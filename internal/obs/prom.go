package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Prometheus text exposition (format 0.0.4). The recorder's counters,
// gauges, and histograms render as typed metric families so a stock
// Prometheus scrape of vectraced's /metrics works with no exporter in
// between. The mapping:
//
//   - monotonic counters  → vectrace_<name>_total (TYPE counter)
//   - gauges / high-water → vectrace_<name>       (TYPE gauge)
//   - histograms          → one family per key prefix, labeled:
//       "stage:parse"         → vectrace_stage_duration_seconds{stage="parse"}
//       "http:POST /v1/jobs"  → vectrace_http_request_duration_seconds{endpoint="POST /v1/jobs"}
//       anything else ("job") → vectrace_duration_seconds{op="job"}
//
// Durations export in seconds (the Prometheus base unit); bucket bounds
// are the histogram's log-spaced microsecond powers converted to seconds,
// cumulative per the exposition contract, ending at le="+Inf". Output is
// deterministic: families and label values sort lexically, which is what
// the golden test pins.

// PromContentType is the Content-Type for text-format exposition.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// gaugeCounters is the subset of Counter indices that are point-in-time
// or high-water values rather than monotonically increasing totals; they
// export as TYPE gauge without the _total suffix.
var gaugeCounters = map[Counter]bool{
	TraceBytesTotal:         true,
	ScanPeakRetainedEvents:  true,
	ResidentRegions:         true,
	PeakResidentRegions:     true,
	InterpSteps:             true,
	InterpStackBytes:        true,
	BudgetMaxSteps:          true,
	BudgetMaxAnalysisBytes:  true,
	AnalysisFootprintBytes:  true,
	ShadowPeakLiveAddresses: true,
	HeapAllocPeakBytes:      true,
	HeapSysPeakBytes:        true,
	QueueDepth:              true,
	QueueDepthPeak:          true,
}

// histFamily maps a recorder histogram key to its exposition family name
// and label pair.
func histFamily(key string) (family, label, value string) {
	switch {
	case strings.HasPrefix(key, "stage:"):
		return "vectrace_stage_duration_seconds", "stage", key[len("stage:"):]
	case strings.HasPrefix(key, "http:"):
		return "vectrace_http_request_duration_seconds", "endpoint", key[len("http:"):]
	default:
		return "vectrace_duration_seconds", "op", key
	}
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// promFloat renders a float sample value (shortest round-trip form).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the recorder's state as text exposition. A nil
// recorder writes only the uptime gauge at zero, so the endpoint answers
// something well-formed even before observability wires up.
func WritePrometheus(w io.Writer, r *Recorder) error {
	bw := bufio.NewWriter(w)

	fmt.Fprintf(bw, "# HELP vectrace_run_duration_seconds Wall time since the recorder started.\n")
	fmt.Fprintf(bw, "# TYPE vectrace_run_duration_seconds gauge\n")
	fmt.Fprintf(bw, "vectrace_run_duration_seconds %s\n", promFloat(r.Elapsed().Seconds()))

	// Counters and gauges, in declaration order (stable and meaningful:
	// ingest → analysis → service).
	for c := Counter(0); c < numCounters; c++ {
		v := r.Get(c)
		if gaugeCounters[c] {
			fmt.Fprintf(bw, "# TYPE vectrace_%s gauge\n", c.Name())
			fmt.Fprintf(bw, "vectrace_%s %d\n", c.Name(), v)
		} else {
			fmt.Fprintf(bw, "# TYPE vectrace_%s_total counter\n", c.Name())
			fmt.Fprintf(bw, "vectrace_%s_total %d\n", c.Name(), v)
		}
	}

	// Histograms, grouped into families, families and labels sorted.
	type labeled struct {
		label, value string
		snap         HistogramSnapshot
	}
	families := map[string][]labeled{}
	r.eachHist(func(key string, h *Histogram) {
		fam, label, value := histFamily(key)
		families[fam] = append(families[fam], labeled{label: label, value: value, snap: h.Snapshot()})
	})
	famNames := make([]string, 0, len(families))
	for f := range families {
		famNames = append(famNames, f)
	}
	sort.Strings(famNames)
	for _, fam := range famNames {
		series := families[fam]
		sort.Slice(series, func(i, j int) bool { return series[i].value < series[j].value })
		fmt.Fprintf(bw, "# TYPE %s histogram\n", fam)
		for _, s := range series {
			lbl := fmt.Sprintf("%s=%q", s.label, escapeLabel(s.value))
			var cum int64
			for i := 0; i < histBuckets; i++ {
				if len(s.snap.Buckets) == histBuckets {
					cum += s.snap.Buckets[i]
				}
				le := "+Inf"
				if ub := HistBucketUpperNs(i); ub >= 0 {
					le = promFloat(time.Duration(ub).Seconds())
				}
				fmt.Fprintf(bw, "%s_bucket{%s,le=%q} %d\n", fam, lbl, le, cum)
			}
			fmt.Fprintf(bw, "%s_sum{%s} %s\n", fam, lbl, promFloat(time.Duration(s.snap.SumNs).Seconds()))
			fmt.Fprintf(bw, "%s_count{%s} %d\n", fam, lbl, s.snap.Count)
		}
	}
	return bw.Flush()
}

// LintExposition validates Prometheus text-format output: every sample
// belongs to a family declared by a preceding # TYPE line, names and
// label syntax are well formed, no duplicate samples, counters and
// histogram cumulative buckets are non-decreasing, and every histogram
// series ends at le="+Inf" with a matching _count. It is the in-repo
// gate CI runs against a live /metrics scrape — deliberately strict about
// the subset this exporter emits rather than a full grammar.
func LintExposition(data []byte) error {
	types := map[string]string{} // family -> type
	seen := map[string]bool{}    // full sample key -> present
	type histState struct {
		lastCum  int64
		lastLe   string
		sawInf   bool
		infCount int64
	}
	hists := map[string]*histState{} // family+labels (minus le) -> state

	lineNo := 0
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE comment: %s", lineNo, line)
				}
				name, typ := fields[2], fields[3]
				if !validMetricName(name) {
					return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
				}
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := types[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				types[name] = typ
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := name
		suffix := ""
		for _, s := range []string{"_bucket", "_sum", "_count", "_total"} {
			if strings.HasSuffix(name, s) {
				if t, ok := types[strings.TrimSuffix(name, s)]; ok &&
					(t == "histogram" || t == "summary" || (s == "_total" && t == "counter")) {
					fam, suffix = strings.TrimSuffix(name, s), s
				}
				break
			}
		}
		if _, ok := types[fam]; !ok {
			if _, ok := types[name]; ok {
				fam, suffix = name, ""
			} else {
				return fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, name)
			}
		}
		key := name + "{" + labels + "}"
		if seen[key] {
			return fmt.Errorf("line %d: duplicate sample %s", lineNo, key)
		}
		seen[key] = true
		if types[fam] == "counter" && value < 0 {
			return fmt.Errorf("line %d: counter %s is negative", lineNo, name)
		}
		if types[fam] == "histogram" {
			base, le, hasLe := splitLe(labels)
			hk := fam + "{" + base + "}"
			st := hists[hk]
			if st == nil {
				st = &histState{lastCum: -1}
				hists[hk] = st
			}
			switch suffix {
			case "_bucket":
				if !hasLe {
					return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
				}
				cum := int64(value)
				if cum < st.lastCum {
					return fmt.Errorf("line %d: histogram %s buckets not cumulative (%d after %d)", lineNo, hk, cum, st.lastCum)
				}
				st.lastCum, st.lastLe = cum, le
				if le == "+Inf" {
					st.sawInf, st.infCount = true, cum
				}
			case "_count":
				if st.sawInf && int64(value) != st.infCount {
					return fmt.Errorf("line %d: histogram %s count %d != +Inf bucket %d", lineNo, hk, int64(value), st.infCount)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("scan: %w", err)
	}
	if len(seen) == 0 {
		return fmt.Errorf("exposition contains no samples")
	}
	for hk, st := range hists {
		if !st.sawInf {
			return fmt.Errorf("histogram %s has no le=\"+Inf\" bucket", hk)
		}
	}
	return nil
}

// validMetricName reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// parseSample splits one sample line into name, raw label string (without
// braces, "" when absent), and value.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexAny(rest, "{ "); i >= 0 && rest[i] == '{' {
		name = rest[:i]
		j := strings.LastIndex(rest, "}")
		if j < i {
			return "", "", 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", "", 0, fmt.Errorf("malformed sample %q", line)
		}
		name = fields[0]
		rest = fields[1]
	}
	if !validMetricName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 {
		return "", "", 0, fmt.Errorf("sample %q has no value", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("sample %q value: %v", line, err)
	}
	return name, labels, value, nil
}

// splitLe removes the le="..." pair from a raw label string, returning
// the remaining labels and the le value.
func splitLe(labels string) (base, le string, ok bool) {
	const marker = `le="`
	i := strings.Index(labels, marker)
	if i < 0 {
		return labels, "", false
	}
	j := i + len(marker)
	k := strings.Index(labels[j:], `"`)
	if k < 0 {
		return labels, "", false
	}
	le = labels[j : j+k]
	base = strings.Trim(strings.TrimSuffix(labels[:i], ","), ",")
	if tail := strings.TrimPrefix(labels[j+k+1:], ","); tail != "" {
		if base != "" {
			base += ","
		}
		base += tail
	}
	return base, le, true
}
