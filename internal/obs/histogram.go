package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Latency histograms. The service needs distributions, not just totals:
// a mean hides the tail, and the tail is where overload and slow tenants
// live. The design constraints match the rest of the recorder —
//
//   - Observe is lock-free: one atomic add into a fixed log-spaced bucket
//     plus count/sum/max updates, safe for concurrent use from every
//     worker and HTTP handler at once. No allocation after creation.
//   - Nil is the off state: a nil *Histogram ignores Observe, so callers
//     thread histograms unconditionally (the recorder hands out nil ones
//     when observability is off).
//   - Snapshots are mergeable: two snapshots of the same bucket scheme
//     add bucket-wise, so per-shard or per-depth histograms fold into an
//     aggregate without losing the distribution.
//
// Buckets are powers of two in microseconds: bucket 0 holds observations
// up to 1µs, bucket i holds (2^(i-1)µs, 2^i µs], and the final bucket is
// the +Inf overflow. 40 buckets span 1µs to ~76h, which covers everything
// from a single tile sweep to a stuck job, with ≤2× relative error —
// plenty for p50/p95/p99 service dashboards.

// histBuckets is the fixed bucket count (last bucket = +Inf overflow).
const histBuckets = 40

// HistBucketUpperNs returns bucket i's inclusive upper bound in
// nanoseconds, or -1 for the +Inf overflow bucket.
func HistBucketUpperNs(i int) int64 {
	if i >= histBuckets-1 {
		return -1
	}
	return 1000 << uint(i)
}

// histIndex maps a duration in nanoseconds to its bucket.
func histIndex(ns int64) int {
	if ns <= 1000 {
		return 0
	}
	// Smallest i with ns <= 1000<<i: bit length of ceil(ns/1000)-1.
	q := uint64((ns + 999) / 1000)
	i := bits.Len64(q - 1)
	if i >= histBuckets-1 {
		return histBuckets - 1
	}
	return i
}

// A Histogram is a fixed-bucket, log-spaced latency histogram safe for
// concurrent Observe. The nil Histogram is inert.
type Histogram struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	maxNs   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration. Negative durations clamp to zero (a
// backwards clock must not corrupt a bucket index). No-op on nil.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.buckets[histIndex(ns)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(ns)
	for {
		cur := h.maxNs.Load()
		if ns <= cur || h.maxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot returns a consistent-enough copy for export: buckets are read
// individually, so a snapshot taken mid-Observe may be off by the events
// in flight — fine for monitoring, never torn per bucket.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.SumNs = h.sumNs.Load()
	s.MaxNs = h.maxNs.Load()
	s.Buckets = make([]int64, histBuckets)
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// AddSnapshot folds a snapshot's observations into the live histogram —
// the merge direction the server uses to aggregate each finished job's
// per-stage histograms into the service-wide ones. No-op on nil.
func (h *Histogram) AddSnapshot(s HistogramSnapshot) {
	if h == nil || s.Count == 0 {
		return
	}
	if len(s.Buckets) == histBuckets {
		for i, n := range s.Buckets {
			if n > 0 {
				h.buckets[i].Add(n)
			}
		}
	}
	h.count.Add(s.Count)
	h.sumNs.Add(s.SumNs)
	for {
		cur := h.maxNs.Load()
		if s.MaxNs <= cur || h.maxNs.CompareAndSwap(cur, s.MaxNs) {
			return
		}
	}
}

// A HistogramSnapshot is one exported histogram state.
type HistogramSnapshot struct {
	Count   int64
	SumNs   int64
	MaxNs   int64
	Buckets []int64 // len histBuckets; may be nil for the zero snapshot
}

// Merge folds o into s bucket-wise. Snapshots share the fixed bucket
// scheme, so merging is exact: the merged quantiles are the quantiles of
// the union of observations (within bucket resolution).
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	s.Count += o.Count
	s.SumNs += o.SumNs
	if o.MaxNs > s.MaxNs {
		s.MaxNs = o.MaxNs
	}
	if o.Buckets == nil {
		return
	}
	if s.Buckets == nil {
		s.Buckets = make([]int64, histBuckets)
	}
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation inside the covering bucket. The overflow bucket
// interpolates toward the observed maximum. Returns 0 for an empty
// snapshot.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count <= 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			lo := int64(0)
			if i > 0 {
				lo = HistBucketUpperNs(i - 1)
			}
			hi := HistBucketUpperNs(i)
			if hi < 0 || hi > s.MaxNs {
				hi = s.MaxNs // overflow bucket, or max observed below the bound
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - cum) / float64(n)
			return time.Duration(float64(lo) + frac*float64(hi-lo))
		}
		cum = next
	}
	return time.Duration(s.MaxNs)
}

// Recorder integration: named histograms live beside the counters, keyed
// by a "family:label" convention — "stage:parse" for pipeline stages,
// "http:POST /v1/jobs" for HTTP endpoints — which the Prometheus
// exposition maps to one metric family per prefix.

// Hist returns the named histogram, creating it on first use. Returns nil
// on a nil recorder, and nil Histograms ignore Observe, so the call chain
// r.Hist(name).Observe(d) is always safe.
func (r *Recorder) Hist(name string) *Histogram {
	if r == nil {
		return nil
	}
	if h, ok := r.hists.Load(name); ok {
		return h.(*Histogram)
	}
	h, _ := r.hists.LoadOrStore(name, &Histogram{})
	return h.(*Histogram)
}

// ObserveDur records d into the named histogram. No-op on nil.
func (r *Recorder) ObserveDur(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.Hist(name).Observe(d)
}

// HistSnapshot returns a snapshot of the named histogram and whether it
// exists. A nil recorder reports false.
func (r *Recorder) HistSnapshot(name string) (HistogramSnapshot, bool) {
	if r == nil {
		return HistogramSnapshot{}, false
	}
	h, ok := r.hists.Load(name)
	if !ok {
		return HistogramSnapshot{}, false
	}
	return h.(*Histogram).Snapshot(), true
}

// MergeHistsFrom folds every histogram held by from into r's histograms
// of the same names. Safe when either recorder is nil.
func (r *Recorder) MergeHistsFrom(from *Recorder) {
	if r == nil {
		return
	}
	from.eachHist(func(name string, h *Histogram) {
		r.Hist(name).AddSnapshot(h.Snapshot())
	})
}

// eachHist visits every histogram the recorder holds, in map order
// (nil-safe; exporters sort the names themselves for determinism).
func (r *Recorder) eachHist(f func(name string, h *Histogram)) {
	if r == nil {
		return
	}
	r.hists.Range(func(k, v any) bool {
		f(k.(string), v.(*Histogram))
		return true
	})
}
