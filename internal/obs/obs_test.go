package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilRecorderSafe proves the "observability off" contract: every
// exported operation is a no-op on a nil recorder, nothing panics, and a
// context without a recorder flows through unchanged.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Add(EventsScanned, 5)
	r.Set(TraceBytesTotal, 5)
	r.Max(InterpSteps, 5)
	r.GaugeInc(ResidentRegions, PeakResidentRegions)
	r.GaugeDec(ResidentRegions)
	r.RecordRegionFailure("boom")
	r.SetCorruptByte(7)
	if got := r.Get(EventsScanned); got != 0 {
		t.Errorf("nil recorder Get = %d, want 0", got)
	}
	if got := r.Elapsed(); got != 0 {
		t.Errorf("nil recorder Elapsed = %v, want 0", got)
	}
	r.StartTimer("x").Stop()
	r.ObserveDur("stage:x", time.Millisecond)
	if r.Hist("x") != nil {
		t.Error("nil recorder Hist should be nil")
	}
	if _, ok := r.HistSnapshot("x"); ok {
		t.Error("nil recorder HistSnapshot should report absent")
	}
	r.MergeHistsFrom(New())
	r.SetTraceParent("0af7651916cd43dd8448eb211c80319c", "b7ad6b7169203331")
	if r.EnsureTraceID() != "" || r.TraceID() != "" {
		t.Error("nil recorder trace id should be empty")
	}
	if r.NewSpanID() != 0 {
		t.Error("nil recorder NewSpanID should be 0")
	}
	r.RecordSpanAt("x", 1, 0, "", time.Now(), time.Millisecond)
	if tree := r.TraceTree(); tree == nil || len(tree.Roots) != 0 {
		t.Errorf("nil recorder TraceTree = %+v, want empty tree", tree)
	}
	var h *Histogram
	h.Observe(time.Second)
	h.AddSnapshot(HistogramSnapshot{Count: 1})
	if h.Count() != 0 {
		t.Error("nil histogram Count should be 0")
	}
	var fl *FlightRecorder
	fl.Record("admit", "j1", "", "")
	if fl.Len() != 0 || fl.Snapshot() != nil {
		t.Error("nil flight recorder should be empty")
	}
	var lg *Logger
	lg.Info("x")
	lg.Sampled("k", 0, "x")
	if lg.Enabled(0) {
		t.Error("nil logger Enabled should be false")
	}

	ctx := context.Background()
	if got := WithRecorder(ctx, nil); got != ctx {
		t.Error("WithRecorder(nil) should return ctx unchanged")
	}
	if FromContext(ctx) != nil {
		t.Error("FromContext on a bare context should be nil")
	}
	if FromContext(nil) != nil {
		t.Error("FromContext(nil) should be nil")
	}
	sctx, sp := StartSpan(ctx, "stage")
	if sctx != ctx {
		t.Error("StartSpan without a recorder should return ctx unchanged")
	}
	sp.End() // nil span: no-op
	sp.End() // idempotent

	var p *Progress
	p.Stop()
	var srv *Server
	if srv.Addr() != "" {
		t.Error("nil server Addr should be empty")
	}
	if err := srv.Stop(); err != nil {
		t.Errorf("nil server Stop: %v", err)
	}

	rs := r.Stats("tool", nil)
	if rs.SchemaVersion != RunStatsVersion {
		t.Errorf("nil recorder Stats version = %d", rs.SchemaVersion)
	}
	if len(rs.Counters) != int(numCounters) {
		t.Errorf("nil recorder Stats has %d counters, want %d", len(rs.Counters), numCounters)
	}
}

// TestCounterNames pins the counter/name table: full coverage, uniqueness,
// snake_case keys.
func TestCounterNames(t *testing.T) {
	seen := map[string]bool{}
	for c := Counter(0); c < numCounters; c++ {
		name := c.Name()
		if name == "" {
			t.Fatalf("counter %d has no name", c)
		}
		if seen[name] {
			t.Fatalf("duplicate counter name %q", name)
		}
		seen[name] = true
		if strings.ToLower(name) != name || strings.Contains(name, " ") {
			t.Errorf("counter name %q is not snake_case", name)
		}
	}
}

// TestCountersAndGauges exercises the atomic counter kinds, including
// concurrent updates (the race detector is the real assertion there).
func TestCountersAndGauges(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Add(EventsScanned, 1)
				r.Max(InterpSteps, int64(i))
				r.GaugeInc(ResidentRegions, PeakResidentRegions)
				r.GaugeDec(ResidentRegions)
			}
		}()
	}
	wg.Wait()
	if got := r.Get(EventsScanned); got != 4000 {
		t.Errorf("EventsScanned = %d, want 4000", got)
	}
	if got := r.Get(InterpSteps); got != 999 {
		t.Errorf("InterpSteps max = %d, want 999", got)
	}
	if got := r.Get(ResidentRegions); got != 0 {
		t.Errorf("ResidentRegions = %d, want 0 after balanced inc/dec", got)
	}
	if peak := r.Get(PeakResidentRegions); peak < 1 || peak > 4 {
		t.Errorf("PeakResidentRegions = %d, want within [1,4]", peak)
	}
	r.Set(TraceBytesTotal, 123)
	if got := r.Get(TraceBytesTotal); got != 123 {
		t.Errorf("Set/Get = %d, want 123", got)
	}
	r.Max(TraceBytesTotal, 7) // lower: no effect
	if got := r.Get(TraceBytesTotal); got != 123 {
		t.Errorf("Max with smaller value changed counter to %d", got)
	}
}

// TestSpanTree checks parent attribution through the context and the
// recorded span list, and that timers feed only the aggregates.
func TestSpanTree(t *testing.T) {
	r := New()
	ctx := WithRecorder(context.Background(), r)
	ctx1, outer := StartSpan(ctx, "outer")
	_, inner := StartSpan(ctx1, "inner")
	inner.End()
	outer.End()
	r.StartTimer("tile-sweep").Stop()

	rs := r.Stats("t", nil)
	if len(rs.Spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(rs.Spans))
	}
	// Spans record in completion order: inner first.
	if rs.Spans[0].Name != "inner" || rs.Spans[0].Parent != "outer" {
		t.Errorf("inner span = %+v, want name=inner parent=outer", rs.Spans[0])
	}
	if rs.Spans[1].Name != "outer" || rs.Spans[1].Parent != "" {
		t.Errorf("outer span = %+v, want name=outer no parent", rs.Spans[1])
	}
	// Span ids link the same relationship numerically.
	if rs.Spans[0].ID == 0 || rs.Spans[1].ID == 0 {
		t.Errorf("spans missing ids: %+v", rs.Spans)
	}
	if rs.Spans[0].ParentID != rs.Spans[1].ID {
		t.Errorf("inner parent_span_id = %d, want outer id %d", rs.Spans[0].ParentID, rs.Spans[1].ID)
	}
	if rs.Spans[1].ParentID != 0 {
		t.Errorf("outer parent_span_id = %d, want 0", rs.Spans[1].ParentID)
	}
	// Every span and timer feeds its stage histogram.
	for _, name := range []string{"stage:outer", "stage:inner", "stage:tile-sweep"} {
		if hs, ok := rs.Histograms[name]; !ok || hs.Count != 1 {
			t.Errorf("histograms[%q] = %+v, want count 1", name, hs)
		}
	}
	for _, name := range []string{"outer", "inner", "tile-sweep"} {
		agg, ok := rs.SpanTotals[name]
		if !ok || agg.Count != 1 {
			t.Errorf("span_totals[%q] = %+v, want count 1", name, agg)
		}
	}
	// The timer must not materialize an individual span.
	for _, s := range rs.Spans {
		if s.Name == "tile-sweep" {
			t.Error("timer leaked into the individual span list")
		}
	}
}

// TestSpanCaps floods one stage name past maxSpansPerName and the recorder
// past maxRecordedSpans: aggregates keep counting, the individual list
// stays bounded, and drops are reported.
func TestSpanCaps(t *testing.T) {
	r := New()
	ctx := WithRecorder(context.Background(), r)
	const n = maxSpansPerName + 10
	for i := 0; i < n; i++ {
		_, sp := StartSpan(ctx, "flood")
		sp.End()
	}
	rs := r.Stats("t", nil)
	if agg := rs.SpanTotals["flood"]; agg.Count != n {
		t.Errorf("aggregate count = %d, want %d", agg.Count, n)
	}
	if len(rs.Spans) != maxSpansPerName {
		t.Errorf("individual spans = %d, want cap %d", len(rs.Spans), maxSpansPerName)
	}
	if rs.SpansDropped != n-maxSpansPerName {
		t.Errorf("spans_dropped = %d, want %d", rs.SpansDropped, n-maxSpansPerName)
	}
}

// TestStatsRoundTrip writes a populated RunStats document and validates it,
// then checks ValidateRunStats rejects the documented violation classes.
func TestStatsRoundTrip(t *testing.T) {
	r := New()
	r.Add(EventsScanned, 100)
	r.Add(RegionsFailed, 2)
	r.RecordRegionFailure("region 3: boom")
	r.RecordRegionFailure("region 5: later") // first one wins
	r.SetCorruptByte(41)
	r.SetCorruptByte(99) // first one wins
	ctx := WithRecorder(context.Background(), r)
	_, sp := StartSpan(ctx, "scan")
	sp.End()

	path := filepath.Join(t.TempDir(), "stats.json")
	rs := r.Stats("vectrace analyze", map[string]any{"line": 8})
	if err := WriteStats(path, rs); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateRunStats(data); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
	var back RunStats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Tool != "vectrace analyze" || back.Counters["events_scanned"] != 100 {
		t.Errorf("round trip lost data: %+v", back)
	}
	if back.Failures.RegionsFailed != 2 || back.Failures.First != "region 3: boom" || back.Failures.CorruptAtByte != 41 {
		t.Errorf("failures = %+v", back.Failures)
	}

	bad := []struct {
		name   string
		mangle func(map[string]json.RawMessage)
	}{
		{"missing counters", func(m map[string]json.RawMessage) { delete(m, "counters") }},
		{"wrong version", func(m map[string]json.RawMessage) { m["schema_version"] = json.RawMessage("99") }},
		{"missing required counter", func(m map[string]json.RawMessage) {
			var c map[string]int64
			json.Unmarshal(m["counters"], &c)
			delete(c, "ddg_edges")
			raw, _ := json.Marshal(c)
			m["counters"] = raw
		}},
	}
	for _, tc := range bad {
		var m map[string]json.RawMessage
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatal(err)
		}
		tc.mangle(m)
		mangled, _ := json.Marshal(m)
		if err := ValidateRunStats(mangled); err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
	if err := ValidateRunStats([]byte("not json")); err == nil {
		t.Error("non-JSON input validated")
	}
}

// TestProgress drives the printer with a fast interval and checks the line
// format, the ETA plumbing, and the final "done" accounting.
func TestProgress(t *testing.T) {
	r := New()
	r.Add(EventsScanned, 250_000)
	r.Add(RegionsCompleted, 3)
	r.Add(RegionsFailed, 1)
	r.Set(TraceBytesTotal, 1000)
	r.Add(TraceBytesRead, 500)
	var buf bytes.Buffer
	p := StartProgress(r, &buf, 5*time.Millisecond)
	time.Sleep(30 * time.Millisecond)
	p.Stop()
	p.Stop() // idempotent
	out := buf.String()
	if !strings.Contains(out, "progress:") {
		t.Fatalf("no progress line in output:\n%s", out)
	}
	if !strings.Contains(out, "regions 3 done / 1 failed") {
		t.Errorf("missing region accounting:\n%s", out)
	}
	if !strings.Contains(out, "(50%)") {
		t.Errorf("missing percent-done:\n%s", out)
	}
	last := strings.TrimSpace(out[strings.LastIndex(strings.TrimSpace(out), "\n")+1:])
	if !strings.HasSuffix(last, "done") {
		t.Errorf("final line %q not marked done", last)
	}
	if StartProgress(nil, &buf, 0) != nil {
		t.Error("StartProgress with nil recorder should be nil")
	}
}

// TestCountingReader checks byte accounting and nil-recorder pass-through.
func TestCountingReader(t *testing.T) {
	r := New()
	cr := &CountingReader{R: strings.NewReader("hello world"), Rec: r, C: TraceBytesRead}
	data, err := io.ReadAll(cr)
	if err != nil || string(data) != "hello world" {
		t.Fatalf("read %q, %v", data, err)
	}
	if got := r.Get(TraceBytesRead); got != 11 {
		t.Errorf("counted %d bytes, want 11", got)
	}
	nilCR := &CountingReader{R: strings.NewReader("x"), C: TraceBytesRead}
	if data, err := io.ReadAll(nilCR); err != nil || string(data) != "x" {
		t.Errorf("nil-recorder CountingReader broke the stream: %q, %v", data, err)
	}
}

// TestServer starts the debug listener on an ephemeral port and exercises
// /metrics, /progress, and /debug/pprof/ while the recorder is being
// updated — the live-observation scenario — then proves a second server in
// the same process re-binds cleanly (the expvar publish is once-only).
func TestServer(t *testing.T) {
	r := New()
	r.Add(EventsScanned, 42)
	fl := NewFlightRecorder(32)
	fl.Record("admit", "j1", "tid", "")
	srv, err := StartServer("127.0.0.1:0", r, fl)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // concurrent updates while serving
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Add(EventsScanned, 1)
				r.StartTimer("tile-sweep").Stop()
			}
		}
	}()
	get := func(path string) (int, string) {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	// /metrics speaks Prometheus text exposition now; the expvar JSON
	// moved to /debug/vars (with /vars as deprecated alias).
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "# TYPE vectrace_events_scanned_total counter") {
		t.Errorf("/metrics: code %d, body %.120s", code, body)
	} else if err := LintExposition([]byte(body)); err != nil {
		t.Errorf("/metrics fails exposition lint: %v", err)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "vectrace_run") {
		t.Errorf("/debug/vars: code %d, body %.120s", code, body)
	}
	if code, body := get("/vars"); code != 200 || !strings.Contains(body, "vectrace_run") {
		t.Errorf("/vars alias: code %d, body %.120s", code, body)
	}
	if code, body := get("/debug/flight"); code != 200 || !strings.Contains(body, `"kind": "admit"`) {
		t.Errorf("/debug/flight: code %d, body %.120s", code, body)
	}
	code, body := get("/progress")
	if code != 200 {
		t.Fatalf("/progress: code %d", code)
	}
	var snap struct {
		Counters   map[string]int64   `json:"counters"`
		SpanTotals map[string]SpanAgg `json:"span_totals"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/progress not JSON: %v\n%s", err, body)
	}
	if snap.Counters["events_scanned"] < 42 {
		t.Errorf("/progress events_scanned = %d, want >= 42", snap.Counters["events_scanned"])
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: code %d", code)
	}
	close(stop)
	wg.Wait()
	if err := srv.Stop(); err != nil {
		t.Fatal(err)
	}
	// Second server: Publish must not panic, recorder handoff must work.
	r2 := New()
	srv2, err := StartServer("127.0.0.1:0", r2, nil)
	if err != nil {
		t.Fatalf("second StartServer: %v", err)
	}
	defer srv2.Stop()
	if _, err := StartServer("", nil, nil); err == nil {
		t.Error("StartServer with nil recorder should fail")
	}
}

// TestBenchStatsPath pins the trajectory filename convention.
func TestBenchStatsPath(t *testing.T) {
	p := BenchStatsPath()
	if !strings.HasPrefix(p, "BENCH_") || !strings.HasSuffix(p, ".json") {
		t.Errorf("BenchStatsPath = %q, want BENCH_<rev>.json", p)
	}
}
