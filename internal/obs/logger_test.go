package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"
)

// decodeNDJSON parses a log buffer as one JSON object per line.
func decodeNDJSON(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, line)
		}
		out = append(out, m)
	}
	return out
}

// TestLoggerNDJSON: the JSON format emits one parseable object per line
// carrying message, level, and the supplied attributes.
func TestLoggerNDJSON(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("job_admitted", "job", "j1", "trace_id", "abc", "queue_depth", 3)
	l.Warn("job_rejected", "reason", "queue full")
	recs := decodeNDJSON(t, &buf)
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0]["msg"] != "job_admitted" || recs[0]["job"] != "j1" ||
		recs[0]["trace_id"] != "abc" || recs[0]["queue_depth"] != float64(3) {
		t.Errorf("first record = %v", recs[0])
	}
	if recs[1]["level"] != "WARN" || recs[1]["reason"] != "queue full" {
		t.Errorf("second record = %v", recs[1])
	}
}

// TestLoggerLevels: records below the configured level are dropped, and
// Enabled lets callers skip attribute construction.
func TestLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, "json", "error")
	if err != nil {
		t.Fatal(err)
	}
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	recs := decodeNDJSON(t, &buf)
	if len(recs) != 1 || recs[0]["msg"] != "e" {
		t.Errorf("error-level logger emitted %v", recs)
	}
	if l.Enabled(slog.LevelInfo) {
		t.Error("Enabled(info) true on an error-level logger")
	}
	if !l.Enabled(slog.LevelError) {
		t.Error("Enabled(error) false on an error-level logger")
	}
}

// TestLoggerText: the text format stays logfmt-ish for humans.
func TestLoggerText(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, "text", "info")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hello", "k", "v")
	if out := buf.String(); !strings.Contains(out, "msg=hello") || !strings.Contains(out, "k=v") {
		t.Errorf("text output = %q", out)
	}
}

// TestLoggerBadConfig: unknown formats and levels are configuration
// errors, reported at construction rather than silently defaulted.
func TestLoggerBadConfig(t *testing.T) {
	if _, err := NewLogger(&bytes.Buffer{}, "xml", "info"); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := NewLogger(&bytes.Buffer{}, "json", "loud"); err == nil {
		t.Error("unknown level accepted")
	}
	// Empty strings take the defaults (json, info).
	l, err := NewLogger(&bytes.Buffer{}, "", "")
	if err != nil || l == nil {
		t.Errorf("defaults rejected: %v", err)
	}
}

// TestLoggerSampling: a hot key is rate-limited per its token bucket, the
// excess is counted, and the next emitted record carries the suppressed
// count — bounded volume without silent loss.
func TestLoggerSampling(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	// Shrink the bucket so the test doesn't depend on wall time: burst of
	// 2, effectively no refill.
	l.sampleBurst = 2
	l.sampleRate = 1e-9
	for i := 0; i < 10; i++ {
		l.Sampled("hot", slog.LevelInfo, "access", "i", i)
	}
	recs := decodeNDJSON(t, &buf)
	if len(recs) != 2 {
		t.Fatalf("burst of 2 emitted %d records", len(recs))
	}
	// Refill one token by backdating the bucket, then the suppressed count
	// surfaces on the next emitted record.
	l.mu.Lock()
	b := l.buckets["hot"]
	b.tokens = 1
	b.last = time.Now()
	l.mu.Unlock()
	l.Sampled("hot", slog.LevelInfo, "access", "i", 10)
	recs = decodeNDJSON(t, &buf)
	if len(recs) != 3 {
		t.Fatalf("refilled bucket emitted %d records, want 3", len(recs))
	}
	if got := recs[2]["suppressed"]; got != float64(8) {
		t.Errorf("suppressed = %v, want 8", got)
	}
	// Independent keys have independent buckets.
	l.Sampled("cold", slog.LevelInfo, "other")
	if recs := decodeNDJSON(t, &buf); len(recs) != 4 {
		t.Errorf("independent key was limited by the hot key")
	}
	// A level below the threshold never charges the bucket.
	var buf2 bytes.Buffer
	l2, _ := NewLogger(&buf2, "json", "warn")
	l2.Sampled("k", slog.LevelInfo, "nope")
	if buf2.Len() != 0 {
		t.Error("below-level Sampled emitted")
	}
}
