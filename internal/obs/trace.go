package obs

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Per-job trace trees. Every recorder can carry a W3C-style trace
// identity: a 16-byte trace id (either generated locally or adopted from
// an ingress `traceparent` header) plus monotonically allocated 8-byte
// span ids. StartSpan threads the parent span id through the context, so
// the recorded spans form a parent-linked tree — the decomposition of one
// job into admission-wait → parse → check → lower → interp →
// region-analyze → report, with real durations — served by vectraced at
// GET /v1/jobs/{id}/trace and embedded in RunStats span entries.
//
// Span ids are a per-recorder counter, not random: a job owns its
// recorder, so ids are unique within the trace (all W3C requires), and a
// counter keeps allocation free and the root span's id predictable (the
// first allocated id, 0x1), which lets the submit handler echo a complete
// traceparent before the job has run.

// traceIDRand is the entropy source for generated trace ids (injectable
// in tests; crypto/rand in production).
var traceIDRand = crand.Read

// NewTraceID returns a random 32-hex-digit W3C trace id. It falls back to
// a time-derived id if the entropy source fails (a trace id must never be
// the reason a job fails).
func NewTraceID() string {
	var b [16]byte
	if _, err := traceIDRand(b[:]); err != nil || b == ([16]byte{}) {
		binary.BigEndian.PutUint64(b[:8], uint64(time.Now().UnixNano()))
		binary.BigEndian.PutUint64(b[8:], ^uint64(time.Now().UnixNano()))
	}
	return hex.EncodeToString(b[:])
}

// SpanIDString renders a recorder-allocated span id as 16 hex digits (the
// W3C parent-id field width). Id 0 — "no span" — renders empty.
func SpanIDString(id uint64) string {
	if id == 0 {
		return ""
	}
	return fmt.Sprintf("%016x", id)
}

// ParseTraceparent parses a W3C traceparent header
// (version-traceid-parentid-flags, e.g.
// "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"). It accepts
// any non-ff version per the spec's forward-compatibility rule, requires
// lowercase hex, and rejects the all-zero ids the spec reserves.
func ParseTraceparent(h string) (traceID, parentID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) < 4 {
		return "", "", false
	}
	ver, tid, pid, flags := parts[0], parts[1], parts[2], parts[3]
	if len(ver) != 2 || !isLowerHex(ver) || ver == "ff" {
		return "", "", false
	}
	if len(tid) != 32 || !isLowerHex(tid) || tid == strings.Repeat("0", 32) {
		return "", "", false
	}
	if len(pid) != 16 || !isLowerHex(pid) || pid == strings.Repeat("0", 16) {
		return "", "", false
	}
	if len(flags) != 2 || !isLowerHex(flags) {
		return "", "", false
	}
	return tid, pid, true
}

// Traceparent formats a traceparent header for the given trace and span
// ids, always sampled (this service records every job it admits).
func Traceparent(traceID string, spanID uint64) string {
	return fmt.Sprintf("00-%s-%s-01", traceID, SpanIDString(spanID))
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// SetTraceParent adopts an ingress trace identity: the job joins the
// caller's trace, and the caller's span becomes the remote parent of the
// job's root span. First write wins; no-op on nil.
func (r *Recorder) SetTraceParent(traceID, parentSpanID string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.traceID == "" {
		r.traceID = traceID
		r.remoteParent = parentSpanID
	}
	r.mu.Unlock()
}

// EnsureTraceID returns the recorder's trace id, generating one on first
// use. Returns "" on a nil recorder.
func (r *Recorder) EnsureTraceID() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	if r.traceID == "" {
		r.traceID = NewTraceID()
	}
	id := r.traceID
	r.mu.Unlock()
	return id
}

// TraceID returns the recorder's trace id ("" when none was set or
// generated yet, and on nil).
func (r *Recorder) TraceID() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.traceID
}

// NewSpanID allocates the next span id (0 on a nil recorder).
func (r *Recorder) NewSpanID() uint64 {
	if r == nil {
		return 0
	}
	return r.spanSeq.Add(1)
}

// A TraceSpan is one node of an exported trace tree.
type TraceSpan struct {
	Name         string       `json:"name"`
	SpanID       string       `json:"span_id"`
	ParentSpanID string       `json:"parent_span_id,omitempty"`
	StartNs      int64        `json:"start_ns"`
	DurNs        int64        `json:"dur_ns"`
	Children     []*TraceSpan `json:"children,omitempty"`
}

// A TraceTree is the parent-linked span tree of one recorder (one job):
// the document GET /v1/jobs/{id}/trace serves. StartNs values are
// relative to the recorder's start, so the tree orders and nests without
// absolute clocks.
type TraceTree struct {
	TraceID string `json:"trace_id"`
	// RemoteParentSpanID is the ingress traceparent's span id when the job
	// joined a caller's trace; the root spans are its children.
	RemoteParentSpanID string `json:"remote_parent_span_id,omitempty"`
	// SpanCount counts materialized spans; SpansDropped counts spans the
	// recording caps elided (their time is still in the parents).
	SpanCount    int          `json:"span_count"`
	SpansDropped int64        `json:"spans_dropped,omitempty"`
	Roots        []*TraceSpan `json:"roots"`
}

// TraceTree assembles the recorder's spans into a parent-linked tree.
// Spans whose parent was dropped by the recording caps (or not yet ended)
// surface as roots rather than disappearing. Safe on nil (empty tree).
func (r *Recorder) TraceTree() *TraceTree {
	t := &TraceTree{Roots: []*TraceSpan{}}
	if r == nil {
		return t
	}
	r.mu.Lock()
	t.TraceID = r.traceID
	t.RemoteParentSpanID = r.remoteParent
	t.SpansDropped = r.spansDropped
	spans := make([]SpanStats, len(r.spans))
	copy(spans, r.spans)
	r.mu.Unlock()

	nodes := make(map[uint64]*TraceSpan, len(spans))
	for _, s := range spans {
		if s.ID == 0 {
			continue
		}
		nodes[s.ID] = &TraceSpan{
			Name:         s.Name,
			SpanID:       SpanIDString(s.ID),
			ParentSpanID: SpanIDString(s.ParentID),
			StartNs:      s.StartNs,
			DurNs:        s.DurNs,
		}
	}
	t.SpanCount = len(nodes)
	for _, s := range spans {
		n := nodes[s.ID]
		if n == nil {
			continue
		}
		if p := nodes[s.ParentID]; p != nil && s.ParentID != s.ID {
			p.Children = append(p.Children, n)
		} else {
			if n.ParentSpanID == "" && t.RemoteParentSpanID != "" {
				n.ParentSpanID = t.RemoteParentSpanID
			}
			t.Roots = append(t.Roots, n)
		}
	}
	var order func([]*TraceSpan)
	order = func(ns []*TraceSpan) {
		sort.Slice(ns, func(i, j int) bool {
			if ns[i].StartNs != ns[j].StartNs {
				return ns[i].StartNs < ns[j].StartNs
			}
			return ns[i].SpanID < ns[j].SpanID
		})
		for _, n := range ns {
			order(n.Children)
		}
	}
	order(t.Roots)
	return t
}
