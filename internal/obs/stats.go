package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime/debug"
	"sort"
)

// RunStats is the versioned machine-readable summary of one analysis run:
// the document `-stats out.json` emits and the BENCH_<rev>.json perf
// trajectory stores. Schema evolution rule: bump SchemaVersion on any
// incompatible change (renamed/removed keys); adding keys is compatible.
// ValidateRunStats is the golden-style key check CI runs against emitted
// documents.
type RunStats struct {
	// SchemaVersion identifies the document layout; see RunStatsVersion.
	SchemaVersion int `json:"schema_version"`
	// Tool names the producing command ("vectrace analyze", "vecbench").
	Tool string `json:"tool"`
	// Config echoes the run's effective knobs (workers, tile, line, ...)
	// so a stats document is self-describing.
	Config map[string]any `json:"config,omitempty"`
	// DurationNs is the run's wall time, recorder creation to export.
	DurationNs int64 `json:"duration_ns"`
	// Counters holds every counter by its snake_case name, zeros included
	// (a missing key means a schema mismatch, not a zero).
	Counters map[string]int64 `json:"counters"`
	// Spans lists individually recorded stage spans in completion order
	// (bounded; see SpansDropped).
	Spans []SpanStats `json:"spans"`
	// SpanTotals aggregates every span and timer by stage name, including
	// ones past the individual-span caps.
	SpanTotals map[string]SpanAgg `json:"span_totals"`
	// SpansDropped counts spans elided from Spans by the caps.
	SpansDropped int64 `json:"spans_dropped"`
	// Histograms holds every named latency histogram ("stage:<name>",
	// "http:<endpoint>", "job") with estimated p50/p95/p99, zero-length when
	// nothing was observed (a missing key means a schema mismatch).
	Histograms map[string]HistogramStats `json:"histograms"`
	// TraceID is the run's W3C trace id when one was set or generated
	// (vectraced jobs always carry one; CLI runs usually omit it).
	TraceID string `json:"trace_id,omitempty"`
	// Failures summarizes what went wrong, if anything.
	Failures FailureSummary `json:"failures"`
}

// RunStatsVersion is the current RunStats schema version. Version 2 added
// the one-pass memory telemetry to the required counter set: process heap
// peaks (heap_alloc_peak_bytes, heap_sys_peak_bytes, sampled by the CLI
// while the run is live) and the stream kernels' live-address high-water
// mark (shadow_peak_live_addresses). Version 3 added the hot-path engine
// telemetry: interp_steps joined the required set, alongside the new
// interp_batched_events (events delivered through the plan dispatcher's
// batched Tracer fan-out) and shadow_pages_touched (pages the paged shadow
// memory dirtied across regions; zero under the map-shadow oracle).
// Version 4 added the vectraced service telemetry to the required set:
// admission (jobs_admitted, jobs_rejected), job terminal states
// (jobs_completed, jobs_failed, jobs_cancelled), the content-addressed
// result cache (cache_hits, cache_misses), and the queue-depth high-water
// mark (queue_depth_peak). CLI runs export them as zeros; vecbench -serve
// additionally folds serve_p99_ms and serve_cache_hit_rate into the stats
// config, so the BENCH_<rev>.json trajectory tracks service latency next
// to analysis throughput. Version 5 added the required "histograms" key
// (per-stage and per-endpoint log-bucket latency distributions with
// p50/p95/p99 estimates), span ids and parent links on span entries
// (span_id / parent_span_id — the trace-tree form served at
// /v1/jobs/{id}/trace), and the optional trace_id; vecbench -serve folds
// the server-observed serve_server_p50_ms / serve_server_p99_ms beside
// the client-observed latencies.
const RunStatsVersion = 5

// SpanStats is one recorded stage span. StartNs is relative to the
// recorder's start, so spans order and nest without absolute clocks. ID
// and ParentID are the recorder-allocated span ids that link the spans
// into a trace tree (0 = none; Timer-fed aggregates never materialize
// ids).
type SpanStats struct {
	Name     string `json:"name"`
	ID       uint64 `json:"span_id,omitempty"`
	Parent   string `json:"parent,omitempty"`
	ParentID uint64 `json:"parent_span_id,omitempty"`
	StartNs  int64  `json:"start_ns"`
	DurNs    int64  `json:"dur_ns"`
}

// SpanAgg aggregates the spans and timers of one stage name.
type SpanAgg struct {
	Count   int64 `json:"count"`
	TotalNs int64 `json:"total_ns"`
	MaxNs   int64 `json:"max_ns"`
}

// HistogramStats is the exported form of one latency histogram: the raw
// bucket counts (log-spaced; see HistBucketUpperNs) plus the quantile
// estimates dashboards actually read.
type HistogramStats struct {
	Count   int64   `json:"count"`
	SumNs   int64   `json:"sum_ns"`
	MaxNs   int64   `json:"max_ns"`
	P50Ns   int64   `json:"p50_ns"`
	P95Ns   int64   `json:"p95_ns"`
	P99Ns   int64   `json:"p99_ns"`
	Buckets []int64 `json:"buckets"`
}

// Stats converts a snapshot to its exported form.
func (s HistogramSnapshot) Stats() HistogramStats {
	return HistogramStats{
		Count:   s.Count,
		SumNs:   s.SumNs,
		MaxNs:   s.MaxNs,
		P50Ns:   s.Quantile(0.50).Nanoseconds(),
		P95Ns:   s.Quantile(0.95).Nanoseconds(),
		P99Ns:   s.Quantile(0.99).Nanoseconds(),
		Buckets: s.Buckets,
	}
}

// FailureSummary condenses a run's failures: the per-region failure count,
// the first failure message, and the corrupt byte offset when the input
// trace itself was damaged (-1 otherwise).
type FailureSummary struct {
	RegionsFailed int64  `json:"regions_failed"`
	First         string `json:"first,omitempty"`
	CorruptAtByte int64  `json:"corrupt_at_byte"`
}

// Stats exports the recorder's current state as a RunStats document.
// Safe on a nil recorder (returns a valid empty document), so the export
// path needs no separate "was observability on" branch.
func (r *Recorder) Stats(tool string, config map[string]any) *RunStats {
	rs := &RunStats{
		SchemaVersion: RunStatsVersion,
		Tool:          tool,
		Config:        config,
		Counters:      make(map[string]int64, numCounters),
		SpanTotals:    map[string]SpanAgg{},
		Spans:         []SpanStats{},
		Histograms:    map[string]HistogramStats{},
		Failures:      FailureSummary{CorruptAtByte: -1},
	}
	for c := Counter(0); c < numCounters; c++ {
		rs.Counters[c.Name()] = r.Get(c)
	}
	if r == nil {
		return rs
	}
	rs.DurationNs = r.Elapsed().Nanoseconds()
	rs.TraceID = r.TraceID()
	r.eachHist(func(name string, h *Histogram) {
		rs.Histograms[name] = h.Snapshot().Stats()
	})
	r.mu.Lock()
	rs.Spans = append(rs.Spans, r.spans...)
	for name, agg := range r.aggs {
		rs.SpanTotals[name] = *agg
	}
	rs.SpansDropped = r.spansDropped
	rs.Failures.First = r.firstFailure
	rs.Failures.CorruptAtByte = r.corruptByte
	r.mu.Unlock()
	rs.Failures.RegionsFailed = r.Get(RegionsFailed)
	return rs
}

// WriteStats marshals rs (indented, trailing newline) to path.
func WriteStats(path string, rs *RunStats) error {
	data, err := json.MarshalIndent(rs, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal stats: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("obs: write stats: %w", err)
	}
	return nil
}

// requiredCounters are the keys every valid RunStats document must carry —
// the golden subset CI pins (new counters may be added freely; these may
// not disappear without a schema version bump).
var requiredCounters = []string{
	"events_scanned",
	"trace_blocks_read",
	"trace_blocks_decompressed",
	"region_index_hits",
	"regions_started",
	"regions_completed",
	"regions_failed",
	"ddg_nodes",
	"ddg_edges",
	"candidates_analyzed",
	"tiles_dispatched",
	"partitions_emitted",
	"shadow_peak_live_addresses",
	"heap_alloc_peak_bytes",
	"heap_sys_peak_bytes",
	"interp_steps",
	"interp_batched_events",
	"shadow_pages_touched",
	"jobs_admitted",
	"jobs_rejected",
	"jobs_completed",
	"jobs_failed",
	"jobs_cancelled",
	"cache_hits",
	"cache_misses",
	"queue_depth_peak",
}

// ValidateRunStats performs the golden-style schema check on a marshaled
// RunStats document: version match, required top-level keys, required
// counter keys, and well-formed span entries. It returns the first
// violation found.
func ValidateRunStats(data []byte) error {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("obs: stats document is not JSON: %w", err)
	}
	for _, key := range []string{"schema_version", "tool", "duration_ns", "counters", "spans", "span_totals", "histograms", "failures"} {
		if _, ok := raw[key]; !ok {
			return fmt.Errorf("obs: stats document missing required key %q", key)
		}
	}
	var version int
	if err := json.Unmarshal(raw["schema_version"], &version); err != nil || version != RunStatsVersion {
		return fmt.Errorf("obs: schema_version %s, want %d", raw["schema_version"], RunStatsVersion)
	}
	var counters map[string]int64
	if err := json.Unmarshal(raw["counters"], &counters); err != nil {
		return fmt.Errorf("obs: counters malformed: %w", err)
	}
	missing := []string{}
	for _, name := range requiredCounters {
		if _, ok := counters[name]; !ok {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("obs: counters missing required keys %v", missing)
	}
	var spans []SpanStats
	if err := json.Unmarshal(raw["spans"], &spans); err != nil {
		return fmt.Errorf("obs: spans malformed: %w", err)
	}
	for i, s := range spans {
		if s.Name == "" {
			return fmt.Errorf("obs: span %d has no name", i)
		}
		if s.DurNs < 0 || s.StartNs < 0 {
			return fmt.Errorf("obs: span %d (%s) has negative timing", i, s.Name)
		}
	}
	var hists map[string]HistogramStats
	if err := json.Unmarshal(raw["histograms"], &hists); err != nil {
		return fmt.Errorf("obs: histograms malformed: %w", err)
	}
	for name, h := range hists {
		if h.Count < 0 {
			return fmt.Errorf("obs: histogram %q has negative count", name)
		}
		if len(h.Buckets) != 0 && len(h.Buckets) != histBuckets {
			return fmt.Errorf("obs: histogram %q has %d buckets, want %d", name, len(h.Buckets), histBuckets)
		}
	}
	var failures FailureSummary
	if err := json.Unmarshal(raw["failures"], &failures); err != nil {
		return fmt.Errorf("obs: failures malformed: %w", err)
	}
	return nil
}

// BenchStatsPath returns the conventional perf-trajectory filename for the
// current build, BENCH_<rev>.json, where <rev> is the VCS revision baked
// into the binary (12 hex digits) or "dev" for non-VCS builds. vecbench
// resolves `-stats auto` through this, so CI runs land one stats document
// per revision without shelling out to git.
func BenchStatsPath() string {
	rev := "dev"
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 12 {
				rev = s.Value[:12]
				break
			}
		}
	}
	return fmt.Sprintf("BENCH_%s.json", rev)
}
