package obs

import (
	"context"
	rtrace "runtime/trace"
	"time"
)

// Stage spans. The pipeline's logical stages — parse → check → lower →
// interp/record → scan → region-analyze → tile-sweep → stride → report —
// are recorded two ways at once:
//
//   - into the Recorder, as a named span with wall-clock duration and its
//     parent stage (the innermost span open on the context when it
//     started), aggregated per name so unbounded fan-out stays bounded;
//   - into the Go execution tracer, as a runtime/trace Task plus Region,
//     so `vectrace analyze -exectrace` output groups goroutine activity
//     under the logical stage names in `go tool trace`.
//
// Context-free inner stages (per-tile sweeps, per-region analyses inside
// worker goroutines) use the allocation-free Timer variant, which feeds
// the same per-name aggregates without materializing a span per unit.

// A Span is one open stage. The zero/nil Span is inert: End is a no-op,
// so callers can thread the StartSpan result unconditionally.
type Span struct {
	rec    *Recorder
	name   string
	parent string
	start  time.Time
	task   *rtrace.Task
	region *rtrace.Region
	ended  bool
}

// StartSpan opens a named stage span as a child of the innermost span on
// ctx, returning a derived context carrying the new span (and the
// recorder's runtime/trace task). With no recorder on ctx it returns ctx
// unchanged and a nil span — the whole call is two pointer lookups.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	r := FromContext(ctx)
	if r == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey{}).(string)
	tctx, task := rtrace.NewTask(ctx, name)
	s := &Span{
		rec:    r,
		name:   name,
		parent: parent,
		start:  time.Now(),
		task:   task,
		region: rtrace.StartRegion(tctx, name),
	}
	return context.WithValue(tctx, spanKey{}, name), s
}

// End closes the span, recording its duration. Safe on nil and idempotent.
// End must be called on the goroutine that called StartSpan (the
// runtime/trace region contract); the cross-goroutine task is ended too.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	d := time.Since(s.start)
	s.region.End()
	s.task.End()
	s.rec.recordSpan(s.name, s.parent, s.start, d)
}

// A Timer is the context-free, allocation-free span for per-unit inner
// stages: a value type holding a start time. The zero Timer (from a nil
// recorder) is inert.
type Timer struct {
	rec   *Recorder
	name  string
	start time.Time
}

// StartTimer begins timing a named inner stage. On a nil recorder the
// returned zero Timer costs nothing to stop.
func (r *Recorder) StartTimer(name string) Timer {
	if r == nil {
		return Timer{}
	}
	return Timer{rec: r, name: name, start: time.Now()}
}

// Stop records the elapsed time into the per-name aggregates (not the
// individual span list — inner stages fan out per tile/region and only
// their distribution matters). No-op on the zero Timer.
func (t Timer) Stop() {
	if t.rec == nil {
		return
	}
	t.rec.recordAgg(t.name, time.Since(t.start))
}

// recordSpan files one finished span: always into the per-name aggregate,
// and into the individual list while under the global and per-name caps.
func (r *Recorder) recordSpan(name, parent string, start time.Time, d time.Duration) {
	rel := start.Sub(r.start).Nanoseconds()
	r.mu.Lock()
	defer r.mu.Unlock()
	agg := r.agg(name)
	agg.Count++
	agg.TotalNs += d.Nanoseconds()
	if ns := d.Nanoseconds(); ns > agg.MaxNs {
		agg.MaxNs = ns
	}
	if len(r.spans) >= maxRecordedSpans || agg.Count > maxSpansPerName {
		r.spansDropped++
		return
	}
	r.spans = append(r.spans, SpanStats{
		Name:    name,
		Parent:  parent,
		StartNs: rel,
		DurNs:   d.Nanoseconds(),
	})
}

// recordAgg updates only the per-name aggregate (Timer path).
func (r *Recorder) recordAgg(name string, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	agg := r.agg(name)
	agg.Count++
	agg.TotalNs += d.Nanoseconds()
	if ns := d.Nanoseconds(); ns > agg.MaxNs {
		agg.MaxNs = ns
	}
}

// agg returns the named aggregate, creating it on first use. Callers hold
// r.mu.
func (r *Recorder) agg(name string) *SpanAgg {
	a := r.aggs[name]
	if a == nil {
		a = &SpanAgg{}
		r.aggs[name] = a
	}
	return a
}
