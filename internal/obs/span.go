package obs

import (
	"context"
	rtrace "runtime/trace"
	"time"
)

// Stage spans. The pipeline's logical stages — parse → check → lower →
// interp/record → scan → region-analyze → tile-sweep → stride → report —
// are recorded two ways at once:
//
//   - into the Recorder, as a named span with wall-clock duration, a
//     recorder-unique span id, and its parent stage (the innermost span
//     open on the context when it started), aggregated per name so
//     unbounded fan-out stays bounded; the parent links make the spans a
//     tree (see trace.go), and every span's duration also feeds the
//     "stage:<name>" latency histogram;
//   - into the Go execution tracer, as a runtime/trace Task plus Region,
//     so `vectrace analyze -exectrace` output groups goroutine activity
//     under the logical stage names in `go tool trace`.
//
// Context-free inner stages (per-tile sweeps, per-region analyses inside
// worker goroutines) use the allocation-free Timer variant, which feeds
// the same per-name aggregates without materializing a span per unit.

// spanRef is the context-carried identity of an open span.
type spanRef struct {
	name string
	id   uint64
}

// A Span is one open stage. The zero/nil Span is inert: End is a no-op,
// so callers can thread the StartSpan result unconditionally.
type Span struct {
	rec      *Recorder
	name     string
	id       uint64
	parent   string
	parentID uint64
	start    time.Time
	task     *rtrace.Task
	region   *rtrace.Region
	ended    bool
}

// ID returns the span's recorder-allocated id (0 on nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// StartSpan opens a named stage span as a child of the innermost span on
// ctx, returning a derived context carrying the new span (and the
// recorder's runtime/trace task). With no recorder on ctx it returns ctx
// unchanged and a nil span — the whole call is two pointer lookups.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	r := FromContext(ctx)
	if r == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey{}).(spanRef)
	tctx, task := rtrace.NewTask(ctx, name)
	s := &Span{
		rec:      r,
		name:     name,
		id:       r.NewSpanID(),
		parent:   parent.name,
		parentID: parent.id,
		start:    time.Now(),
		task:     task,
		region:   rtrace.StartRegion(tctx, name),
	}
	return context.WithValue(tctx, spanKey{}, spanRef{name: name, id: s.id}), s
}

// End closes the span, recording its duration. Safe on nil and idempotent.
// End must be called on the goroutine that called StartSpan (the
// runtime/trace region contract); the cross-goroutine task is ended too.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	d := time.Since(s.start)
	s.region.End()
	s.task.End()
	s.rec.recordSpan(s.name, s.id, s.parent, s.parentID, s.start, d)
}

// SpanContext returns ctx carrying r plus an open parent identity that was
// allocated with NewSpanID rather than StartSpan — how the server parents
// every pipeline stage under a job's pre-allocated root span, whose own
// SpanStats entry is filed later with RecordSpanAt. On a nil recorder the
// context is returned unchanged.
func (r *Recorder) SpanContext(ctx context.Context, name string, id uint64) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(WithRecorder(ctx, r), spanKey{}, spanRef{name: name, id: id})
}

// RecordSpanAt files a span with explicit identity and timing — the
// companion of NewSpanID/SpanContext for spans whose lifetime is not a
// single function scope (a job's root span, the synthetic admission-wait
// span reconstructed from queue timestamps). No-op on a nil recorder.
func (r *Recorder) RecordSpanAt(name string, id, parentID uint64, parentName string, start time.Time, d time.Duration) {
	if r == nil {
		return
	}
	r.recordSpan(name, id, parentName, parentID, start, d)
}

// A Timer is the context-free, allocation-free span for per-unit inner
// stages: a value type holding a start time. The zero Timer (from a nil
// recorder) is inert.
type Timer struct {
	rec   *Recorder
	name  string
	start time.Time
}

// StartTimer begins timing a named inner stage. On a nil recorder the
// returned zero Timer costs nothing to stop.
func (r *Recorder) StartTimer(name string) Timer {
	if r == nil {
		return Timer{}
	}
	return Timer{rec: r, name: name, start: time.Now()}
}

// Stop records the elapsed time into the per-name aggregates and the
// stage histogram (not the individual span list — inner stages fan out
// per tile/region and only their distribution matters). No-op on the zero
// Timer.
func (t Timer) Stop() {
	if t.rec == nil {
		return
	}
	d := time.Since(t.start)
	t.rec.recordAgg(t.name, d)
	t.rec.Hist("stage:" + t.name).Observe(d)
}

// recordSpan files one finished span: always into the per-name aggregate
// and the "stage:<name>" histogram, and into the individual list while
// under the global and per-name caps.
func (r *Recorder) recordSpan(name string, id uint64, parent string, parentID uint64, start time.Time, d time.Duration) {
	rel := start.Sub(r.start).Nanoseconds()
	r.Hist("stage:" + name).Observe(d)
	r.mu.Lock()
	defer r.mu.Unlock()
	agg := r.agg(name)
	agg.Count++
	agg.TotalNs += d.Nanoseconds()
	if ns := d.Nanoseconds(); ns > agg.MaxNs {
		agg.MaxNs = ns
	}
	if len(r.spans) >= maxRecordedSpans || agg.Count > maxSpansPerName {
		r.spansDropped++
		return
	}
	r.spans = append(r.spans, SpanStats{
		Name:     name,
		ID:       id,
		Parent:   parent,
		ParentID: parentID,
		StartNs:  rel,
		DurNs:    d.Nanoseconds(),
	})
}

// recordAgg updates only the per-name aggregate (Timer path).
func (r *Recorder) recordAgg(name string, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	agg := r.agg(name)
	agg.Count++
	agg.TotalNs += d.Nanoseconds()
	if ns := d.Nanoseconds(); ns > agg.MaxNs {
		agg.MaxNs = ns
	}
}

// agg returns the named aggregate, creating it on first use. Callers hold
// r.mu.
func (r *Recorder) agg(name string) *SpanAgg {
	a := r.aggs[name]
	if a == nil {
		a = &SpanAgg{}
		r.aggs[name] = a
	}
	return a
}
