// Package obs is the analysis pipeline's observability layer: a
// low-overhead recorder of counters, gauges, and stage spans that every
// pipeline layer feeds, plus the exporters that make the recorded run
// visible — a versioned RunStats JSON document, a throttled live progress
// printer, and a localhost debug listener serving /metrics, /progress, and
// the standard pprof endpoints.
//
// The design contract is that observability is free when off and cheap
// when on:
//
//   - A nil *Recorder is valid everywhere. Every method nil-checks its
//     receiver first, so an unobserved pipeline pays one predictable
//     branch per hook — no allocation, no atomic, no map lookup. The
//     pipeline's differential tests prove output is byte-identical with
//     the recorder on and off, and the overhead benchmark bounds the
//     nil-recorder cost of the hooks.
//   - Hot loops never consult the recorder per element. The interpreter
//     reports at its existing 16384-step cancellation poll, the trace
//     scanner at its 4096-event poll, and the analysis kernel at tile
//     granularity; everything finer is accumulated locally first.
//   - Counters are fixed-index atomics (no map, no lock on the hot path);
//     only span recording takes a mutex, and spans are stage-granular.
//
// The Recorder travels on the context.Context that PR 4 threaded through
// the pipeline: obs.WithRecorder attaches it, obs.FromContext recovers it
// (nil when absent), so no analysis API changed shape for observability.
package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Counter identifies one of the recorder's fixed atomic counters. The set
// covers the pipeline end to end: ingestion (bytes, events), region
// lifecycle, graph construction, the analysis sweep, pool behaviour, and
// budget consumption.
type Counter int

const (
	// TraceBytesRead counts compressed VTR1 bytes consumed from the input
	// stream (fed by a CountingReader wrapped around the trace file).
	TraceBytesRead Counter = iota
	// TraceBytesTotal is the input size when known (a gauge set once);
	// the progress printer derives percent-done and ETA from it.
	TraceBytesTotal
	// TraceBlocksRead counts VTR2 container blocks fetched (frame read and
	// checksum-verified), whether served from disk or a scan worker's
	// single-block cache miss. The index-seek guarantee is observable here:
	// analyzing one region of an N-block trace reads only the blocks its
	// indexed byte range covers, not all N.
	TraceBlocksRead
	// TraceBlocksDecompressed counts the subset of fetched blocks whose
	// payload was actually stored compressed and had to be inflated (raw
	// stored blocks are read without a decompression pass).
	TraceBlocksDecompressed
	// RegionIndexHits counts region lookups answered by a VTR2 footer index
	// — region requests that seeked straight to their block range instead of
	// decoding the stream prefix.
	RegionIndexHits
	// EventsScanned counts trace events consumed by the region scanner.
	EventsScanned
	// RegionsScanned counts dynamic regions the scanner closed and yielded.
	RegionsScanned
	// RegionsStarted / RegionsCompleted / RegionsFailed track the analysis
	// lifecycle of regions in both the in-memory and streaming paths.
	RegionsStarted
	RegionsCompleted
	RegionsFailed
	// DDGNodes / DDGEdges count dynamic instances and dependence edges of
	// every graph handed to the analysis.
	DDGNodes
	DDGEdges
	// CandidatesAnalyzed counts candidate static instructions swept.
	CandidatesAnalyzed
	// TilesDispatched counts fused-kernel tiles handed to the worker pool.
	TilesDispatched
	// PartitionsEmitted counts parallel partitions across all candidates.
	PartitionsEmitted
	// UnitVecOps / NonUnitVecOps count operations classified into
	// non-singleton unit-stride / non-unit-stride subpartitions.
	UnitVecOps
	NonUnitVecOps
	// ScratchPoolHits / ScratchPoolMisses track reuse of the pooled
	// per-worker analysis buffers (a miss is a fresh allocation).
	ScratchPoolHits
	ScratchPoolMisses
	// ScanPeakRetainedEvents is the scanner's high-water mark of buffered
	// events (a max gauge): the bounded-memory guarantee, observed.
	ScanPeakRetainedEvents
	// ResidentRegions / PeakResidentRegions gauge materialized regions in
	// flight in the streaming path (current value and high-water mark).
	ResidentRegions
	PeakResidentRegions
	// InterpSteps / InterpStackBytes are max gauges reported at the
	// interpreter's cancellation poll: executed instructions and stack
	// arena in use.
	InterpSteps
	InterpStackBytes
	// BudgetMaxSteps / BudgetMaxAnalysisBytes record the configured
	// core.Budget limits (0 = unlimited), so exported stats show headroom
	// next to consumption (InterpSteps vs MaxSteps, AnalysisFootprintBytes
	// vs MaxAnalysisBytes).
	BudgetMaxSteps
	BudgetMaxAnalysisBytes
	// AnalysisFootprintBytes is a max gauge of the estimated analysis
	// working set (timestamp matrices + result rows) per region.
	AnalysisFootprintBytes
	// ShadowPeakLiveAddresses is a max gauge of the one-pass stream
	// kernel's shadow-memory table: the largest number of distinct live
	// addresses any single region held at once. Together with the tile
	// width it is the kernel's memory model — O(live addresses × tile
	// width) — observed.
	ShadowPeakLiveAddresses
	// StreamPoolHits / StreamPoolMisses track reuse of the pooled one-pass
	// stream kernels (last-writer tables, shadow maps, per-candidate
	// instance arrays and stride scratch). A miss is a fresh allocation; a
	// hit means a region was analyzed entirely in recycled memory.
	StreamPoolHits
	StreamPoolMisses
	// HeapAllocPeakBytes / HeapSysPeakBytes are max gauges of the Go
	// runtime's HeapAlloc / HeapSys, sampled by the diag layer while a run
	// is observed — the whole-process memory high-water marks that land in
	// the perf trajectory next to the analytical footprint gauges.
	HeapAllocPeakBytes
	HeapSysPeakBytes
	// InterpBatchedEvents counts trace events delivered through the
	// interpreter's batched tracer path (BatchTracer.ExecBatch) — i.e. at
	// one interface call per chunk instead of one per instruction. Zero
	// when the run used a per-event sink or the oracle dispatch loop.
	InterpBatchedEvents
	// ShadowPagesTouched counts shadow-memory pages the one-pass stream
	// kernel hooked into its page directory across all regions. Zero when
	// the legacy map shadow was selected. Together with
	// ShadowPeakLiveAddresses it bounds the paged shadow's real footprint:
	// pages × page span ≥ live addresses.
	ShadowPagesTouched
	// JobsAdmitted / JobsRejected count vectraced admission decisions: a
	// submission that won a queue slot versus one turned away with 429 +
	// Retry-After because the bounded queue was full. Their sum is the
	// service's total submission traffic; the rejected count is the
	// overload-degradation story, observed (load is shed, not absorbed).
	JobsAdmitted
	JobsRejected
	// JobsCompleted / JobsFailed / JobsCancelled track the terminal states
	// of admitted jobs: finished with a report, finished with an error
	// (budget exhaustion, corrupt upload, isolated panic), or cancelled by
	// the client / a deadline before finishing. Admitted jobs always reach
	// exactly one of the three, so admitted == completed+failed+cancelled
	// once the queue drains — the balance the drain test pins.
	JobsCompleted
	JobsFailed
	JobsCancelled
	// CacheHits / CacheMisses track the content-addressed result cache
	// (trace/source hash × analysis config → report JSON). A hit serves the
	// stored bytes without running the pipeline; a miss is the single
	// flight that computes them (duplicate concurrent requests coalesce
	// onto one miss).
	CacheHits
	CacheMisses
	// QueueDepth / QueueDepthPeak gauge jobs holding queue slots (queued or
	// running) and the high-water mark — the observable form of the
	// "memory bounded by Q × per-job budget" guarantee.
	QueueDepth
	QueueDepthPeak

	numCounters
)

// counterNames maps Counter indices to the snake_case keys used in
// RunStats JSON, /metrics, and /progress output. Order must match the
// Counter constants above; the obs tests cross-check the two.
var counterNames = [numCounters]string{
	"trace_bytes_read",
	"trace_bytes_total",
	"trace_blocks_read",
	"trace_blocks_decompressed",
	"region_index_hits",
	"events_scanned",
	"regions_scanned",
	"regions_started",
	"regions_completed",
	"regions_failed",
	"ddg_nodes",
	"ddg_edges",
	"candidates_analyzed",
	"tiles_dispatched",
	"partitions_emitted",
	"unit_vec_ops",
	"nonunit_vec_ops",
	"scratch_pool_hits",
	"scratch_pool_misses",
	"scan_peak_retained_events",
	"resident_regions",
	"peak_resident_regions",
	"interp_steps",
	"interp_stack_bytes",
	"budget_max_steps",
	"budget_max_analysis_bytes",
	"analysis_footprint_bytes",
	"shadow_peak_live_addresses",
	"stream_pool_hits",
	"stream_pool_misses",
	"heap_alloc_peak_bytes",
	"heap_sys_peak_bytes",
	"interp_batched_events",
	"shadow_pages_touched",
	"jobs_admitted",
	"jobs_rejected",
	"jobs_completed",
	"jobs_failed",
	"jobs_cancelled",
	"cache_hits",
	"cache_misses",
	"queue_depth",
	"queue_depth_peak",
}

// Name returns the counter's stable snake_case export key.
func (c Counter) Name() string { return counterNames[c] }

// maxRecordedSpans bounds the individually recorded span list; beyond it
// (and beyond maxSpansPerName for any one stage) spans still update the
// per-name aggregates but are not materialized, so a million-region run
// exports a bounded document. Dropped spans are counted, never silent.
const (
	maxRecordedSpans = 4096
	maxSpansPerName  = 64
)

// A Recorder accumulates one run's metrics and spans. All counter methods
// are safe for concurrent use and safe on a nil receiver (the "observability
// off" state): the nil check is the entire cost of an unobserved hook.
type Recorder struct {
	start    time.Time
	counters [numCounters]atomic.Int64

	// spanSeq allocates trace span ids (see trace.go); hists holds the
	// named latency histograms (see histogram.go). Both are lock-free.
	spanSeq atomic.Uint64
	hists   sync.Map // string -> *Histogram

	mu           sync.Mutex
	spans        []SpanStats
	aggs         map[string]*SpanAgg
	spansDropped int64
	firstFailure string
	corruptByte  int64
	traceID      string // W3C trace id; set on ingress or first EnsureTraceID
	remoteParent string // ingress traceparent's span id, if the job joined a trace
}

// New returns an empty Recorder with its clock started.
func New() *Recorder {
	return &Recorder{start: time.Now(), aggs: make(map[string]*SpanAgg), corruptByte: -1}
}

// Add increments counter c by n. No-op on a nil recorder.
func (r *Recorder) Add(c Counter, n int64) {
	if r == nil {
		return
	}
	r.counters[c].Add(n)
}

// Set stores v into counter c unconditionally (for configuration values
// and totals known once). No-op on a nil recorder.
func (r *Recorder) Set(c Counter, v int64) {
	if r == nil {
		return
	}
	r.counters[c].Store(v)
}

// Max raises counter c to v if v is larger — the max-gauge update used for
// high-water marks. No-op on a nil recorder.
func (r *Recorder) Max(c Counter, v int64) {
	if r == nil {
		return
	}
	for {
		cur := r.counters[c].Load()
		if v <= cur || r.counters[c].CompareAndSwap(cur, v) {
			return
		}
	}
}

// GaugeInc increments the current-value gauge cur and raises its paired
// high-water mark peak. No-op on a nil recorder.
func (r *Recorder) GaugeInc(cur, peak Counter) {
	if r == nil {
		return
	}
	v := r.counters[cur].Add(1)
	r.Max(peak, v)
}

// GaugeDec decrements the current-value gauge cur. No-op on a nil recorder.
func (r *Recorder) GaugeDec(cur Counter) {
	if r == nil {
		return
	}
	r.counters[cur].Add(-1)
}

// Get returns counter c's current value (0 on a nil recorder).
func (r *Recorder) Get(c Counter) int64 {
	if r == nil {
		return 0
	}
	return r.counters[c].Load()
}

// Elapsed returns the time since the recorder was created (0 when nil).
func (r *Recorder) Elapsed() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.start)
}

// RecordRegionFailure notes one failed region for the failure summary,
// keeping the first message. The RegionsFailed counter is maintained
// separately by the pipeline. No-op on a nil recorder.
func (r *Recorder) RecordRegionFailure(msg string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.firstFailure == "" {
		r.firstFailure = msg
	}
	r.mu.Unlock()
}

// SetCorruptByte records the byte offset where the input trace turned out
// to be corrupt (from trace.ErrCorruptTrace diagnostics). No-op on nil.
func (r *Recorder) SetCorruptByte(off int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.corruptByte < 0 {
		r.corruptByte = off
	}
	r.mu.Unlock()
}

// ctxKey carries the recorder on a context; spanKey carries the identity
// (name + span id) of the innermost open span — the parent of the next
// StartSpan.
type ctxKey struct{}
type spanKey struct{}

// WithRecorder returns a context carrying r. Attaching a nil recorder
// returns ctx unchanged, so downstream FromContext stays nil and every
// hook keeps its single-branch fast path.
func WithRecorder(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext returns the recorder carried by ctx, or nil. Callers hold
// the result once per coarse operation (a run, a region, a sweep) — never
// per element — and rely on the nil-safe methods from there.
func FromContext(ctx context.Context) *Recorder {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(ctxKey{}).(*Recorder)
	return r
}
