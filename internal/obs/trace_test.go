package obs

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestParseTraceparent covers the W3C header grammar: the accepted shape,
// forward-compatible versions, and every reserved/malformed form the spec
// rejects. Malformed headers must parse as !ok — the server ignores them
// rather than rejecting work.
func TestParseTraceparent(t *testing.T) {
	const tid = "0af7651916cd43dd8448eb211c80319c"
	const pid = "b7ad6b7169203331"
	good := "00-" + tid + "-" + pid + "-01"
	if gt, gp, ok := ParseTraceparent(good); !ok || gt != tid || gp != pid {
		t.Errorf("ParseTraceparent(%q) = %q %q %v", good, gt, gp, ok)
	}
	// Future versions parse (forward compatibility), surrounding space is
	// trimmed, any flag byte is accepted.
	for _, h := range []string{
		"01-" + tid + "-" + pid + "-01",
		"cc-" + tid + "-" + pid + "-00",
		"  00-" + tid + "-" + pid + "-01  ",
		"00-" + tid + "-" + pid + "-ff",
	} {
		if _, _, ok := ParseTraceparent(h); !ok {
			t.Errorf("ParseTraceparent(%q) rejected, want accepted", h)
		}
	}
	bad := []string{
		"",
		"garbage",
		"00-" + tid + "-" + pid,                                  // missing flags
		"ff-" + tid + "-" + pid + "-01",                          // version ff reserved
		"00-" + strings.Repeat("0", 32) + "-" + pid + "-01",      // all-zero trace id
		"00-" + tid + "-" + strings.Repeat("0", 16) + "-01",      // all-zero parent id
		"00-" + strings.ToUpper(tid) + "-" + pid + "-01",         // uppercase hex
		"00-" + tid[:31] + "-" + pid + "-01",                     // short trace id
		"00-" + tid + "x-" + pid + "-01",                         // bad length + non-hex
		"00-" + tid + "-" + pid[:15] + "g-01",                    // non-hex parent
		"0-" + tid + "-" + pid + "-01",                           // short version
	}
	for _, h := range bad {
		if gt, gp, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted as %q/%q, want rejected", h, gt, gp)
		}
	}
}

// TestTraceparentRoundTrip: a formatted header parses back to the same
// identity.
func TestTraceparentRoundTrip(t *testing.T) {
	r := New()
	tid := r.EnsureTraceID()
	if len(tid) != 32 || !isLowerHex(tid) {
		t.Fatalf("EnsureTraceID = %q, want 32 lowercase hex digits", tid)
	}
	if again := r.EnsureTraceID(); again != tid {
		t.Errorf("EnsureTraceID not stable: %q then %q", tid, again)
	}
	id := r.NewSpanID()
	h := Traceparent(tid, id)
	gt, gp, ok := ParseTraceparent(h)
	if !ok || gt != tid || gp != SpanIDString(id) {
		t.Errorf("round trip %q = %q %q %v", h, gt, gp, ok)
	}
	if SpanIDString(0) != "" {
		t.Error("span id 0 must render empty")
	}
	if s := SpanIDString(0xabc); s != "0000000000000abc" {
		t.Errorf("SpanIDString(0xabc) = %q", s)
	}
}

// TestNewTraceIDFallback: a failing entropy source must still yield a
// usable id — a trace id is never the reason a job fails.
func TestNewTraceIDFallback(t *testing.T) {
	orig := traceIDRand
	defer func() { traceIDRand = orig }()
	traceIDRand = func(b []byte) (int, error) { return 0, errors.New("injected") }
	id := NewTraceID()
	if len(id) != 32 || !isLowerHex(id) || id == strings.Repeat("0", 32) {
		t.Errorf("fallback trace id = %q, want 32 non-zero lowercase hex", id)
	}
}

// TestSetTraceParent: the ingress identity is adopted once; later writes
// (and EnsureTraceID) must not replace it.
func TestSetTraceParent(t *testing.T) {
	r := New()
	r.SetTraceParent("0af7651916cd43dd8448eb211c80319c", "b7ad6b7169203331")
	r.SetTraceParent("ffffffffffffffffffffffffffffffff", "aaaaaaaaaaaaaaaa")
	if got := r.EnsureTraceID(); got != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("trace id = %q, want first write to win", got)
	}
	tree := r.TraceTree()
	if tree.RemoteParentSpanID != "b7ad6b7169203331" {
		t.Errorf("remote parent = %q", tree.RemoteParentSpanID)
	}
}

// TestTraceTree builds the server's exact span topology — a pre-allocated
// root with RecordSpanAt, a synthetic admission-wait, and nested pipeline
// stages via SpanContext/StartSpan — and checks the assembled tree.
func TestTraceTree(t *testing.T) {
	r := New()
	r.SetTraceParent("0af7651916cd43dd8448eb211c80319c", "b7ad6b7169203331")
	r.EnsureTraceID()
	root := r.NewSpanID()
	submitted := time.Now()

	r.RecordSpanAt("admission-wait", r.NewSpanID(), root, "job", submitted, time.Millisecond)
	ctx := r.SpanContext(context.Background(), "job", root)
	pctx, parse := StartSpan(ctx, "parse")
	_, inner := StartSpan(pctx, "lower")
	inner.End()
	parse.End()
	r.RecordSpanAt("job", root, 0, "", submitted, 10*time.Millisecond)

	tree := r.TraceTree()
	if tree.TraceID != "0af7651916cd43dd8448eb211c80319c" {
		t.Errorf("tree trace id = %q", tree.TraceID)
	}
	if tree.SpanCount != 4 || tree.SpansDropped != 0 {
		t.Errorf("span count = %d dropped %d, want 4/0", tree.SpanCount, tree.SpansDropped)
	}
	if len(tree.Roots) != 1 {
		t.Fatalf("roots = %d, want 1 (the job span)", len(tree.Roots))
	}
	job := tree.Roots[0]
	if job.Name != "job" || job.SpanID != SpanIDString(root) {
		t.Fatalf("root = %+v, want the job span", job)
	}
	// The local root joins the caller's trace under the ingress span.
	if job.ParentSpanID != "b7ad6b7169203331" {
		t.Errorf("root parent = %q, want the remote parent", job.ParentSpanID)
	}
	if len(job.Children) != 2 {
		t.Fatalf("job children = %d, want admission-wait + parse", len(job.Children))
	}
	// Children sort by start time: admission-wait first.
	if job.Children[0].Name != "admission-wait" || job.Children[1].Name != "parse" {
		t.Errorf("children = %s, %s", job.Children[0].Name, job.Children[1].Name)
	}
	p := job.Children[1]
	if len(p.Children) != 1 || p.Children[0].Name != "lower" {
		t.Errorf("parse children = %+v, want one lower span", p.Children)
	}
}

// TestTraceTreeOrphans: spans whose parent never materialized (dropped by
// caps, or still open) surface as roots instead of disappearing.
func TestTraceTreeOrphans(t *testing.T) {
	r := New()
	r.RecordSpanAt("stray", r.NewSpanID(), 999, "gone", time.Now(), time.Millisecond)
	tree := r.TraceTree()
	if len(tree.Roots) != 1 || tree.Roots[0].Name != "stray" {
		t.Errorf("orphan not surfaced as root: %+v", tree.Roots)
	}
}
