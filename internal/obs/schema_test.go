package obs

import (
	"os"
	"testing"
)

// TestRunStatsFile validates an externally produced RunStats document — the
// golden-style schema check the CI observability job runs against the stats
// file a real `vectrace analyze -stats` invocation wrote. It is gated on
// OBS_STATS_FILE so ordinary test runs skip it:
//
//	vectrace analyze prog.c -line 8 -instance -1 -stats out.json
//	OBS_STATS_FILE=out.json go test ./internal/obs -run TestRunStatsFile
func TestRunStatsFile(t *testing.T) {
	path := os.Getenv("OBS_STATS_FILE")
	if path == "" {
		t.Skip("OBS_STATS_FILE not set; this check validates CI-produced stats documents")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading stats document: %v", err)
	}
	if err := ValidateRunStats(data); err != nil {
		t.Fatalf("stats document %s failed schema validation: %v", path, err)
	}
}

// TestMetricsFile validates an externally scraped /metrics body with the
// in-repo exposition linter — the CI service-smoke job scrapes the running
// vectraced and hands the body here. Gated the same way as TestRunStatsFile:
//
//	curl -s http://$ADDR/metrics > metrics.txt
//	OBS_METRICS_FILE=metrics.txt go test ./internal/obs -run TestMetricsFile
func TestMetricsFile(t *testing.T) {
	path := os.Getenv("OBS_METRICS_FILE")
	if path == "" {
		t.Skip("OBS_METRICS_FILE not set; this check validates CI-scraped exposition bodies")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading metrics body: %v", err)
	}
	if err := LintExposition(data); err != nil {
		t.Fatalf("metrics body %s failed exposition lint: %v", path, err)
	}
}
