package ast_test

import (
	"testing"

	"github.com/example/vectrace/internal/ast"
	"github.com/example/vectrace/internal/parser"
)

func TestLoopsWalker(t *testing.T) {
	prog, err := parser.Parse("t.c", `
void helper() {
  int k;
  while (k < 5) { k++; }
}
void main() {
  int i;
  int j;
  for (i = 0; i < 4; i++) {
    if (i > 1) {
      for (j = 0; j < 4; j++) { }
    }
  }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	loops := prog.Loops()
	if len(loops) != 3 {
		t.Fatalf("loops = %d, want 3", len(loops))
	}
	byFunc := map[string]int{}
	for _, l := range loops {
		byFunc[l.Func]++
		if l.Line == 0 {
			t.Errorf("loop %d missing line", l.ID)
		}
	}
	if byFunc["helper"] != 1 || byFunc["main"] != 2 {
		t.Fatalf("loops per function = %v", byFunc)
	}
	// The loop nested under the if must still be discovered.
	foundNested := false
	for _, l := range loops {
		if l.Func == "main" && l.ID != loops[1].ID {
			foundNested = true
		}
	}
	if !foundNested {
		t.Error("nested loop under if not collected")
	}
}

func TestOffsets(t *testing.T) {
	prog, err := parser.Parse("t.c", "int x;\nvoid main() { x = 1 + 2; }\n")
	if err != nil {
		t.Fatal(err)
	}
	g := prog.Decls[0].(*ast.GlobalDecl)
	if g.Offset() != 0 {
		t.Errorf("global offset = %d", g.Offset())
	}
	fd := prog.Decls[1].(*ast.FuncDecl)
	if fd.Offset() <= g.Offset() {
		t.Error("function should come after the global")
	}
	asn := fd.Body.Stmts[0].(*ast.Assign)
	bin := asn.RHS.(*ast.Binary)
	if !(asn.Offset() < bin.Offset()) {
		t.Error("expression offsets should be ordered within the statement")
	}
	if bin.X.Offset() >= bin.Y.Offset() {
		t.Error("operand offsets should be ordered")
	}
}

func TestTypeExprForms(t *testing.T) {
	prog, err := parser.Parse("t.c", `
struct s { double d; };
struct s *ptrs[4];
void main() { }
`)
	if err != nil {
		t.Fatal(err)
	}
	g := prog.Decls[1].(*ast.GlobalDecl)
	// ptrs: array(4) of pointer to struct s.
	te := g.Type
	if te.Kind != ast.TypeArray || te.Len != 4 {
		t.Fatalf("outer type = %+v, want array[4]", te)
	}
	if te.ArrayOf.Kind != ast.TypePointer || te.ArrayOf.Elem.Kind != ast.TypeStruct || te.ArrayOf.Elem.Name != "s" {
		t.Fatalf("element type = %+v, want *struct s", te.ArrayOf)
	}
}
