// Package ast defines the abstract syntax tree for MiniC programs.
//
// Every node carries the byte offset of its first token; the parser's
// source.File resolves offsets into line/column positions. Statements that
// matter to the dynamic analysis (loops, assignments) additionally carry
// stable integer IDs assigned by the parser, which the lowering phase
// propagates onto VIR instructions so that analysis reports can be grouped
// per source loop, the way the paper reports per-loop metrics.
package ast

import (
	"github.com/example/vectrace/internal/source"
	"github.com/example/vectrace/internal/token"
)

// Node is the interface implemented by all AST nodes.
type Node interface {
	// Offset returns the byte offset of the node's first token.
	Offset() int
}

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// Decl is a top-level declaration node.
type Decl interface {
	Node
	declNode()
}

// ---------------------------------------------------------------- Types

// TypeExpr is the syntactic form of a type. It is resolved to a types.Type by
// the sema package.
type TypeExpr struct {
	Off     int
	Kind    TypeKind
	Name    string    // struct name when Kind == TypeStruct
	Elem    *TypeExpr // pointee when Kind == TypePointer
	ArrayOf *TypeExpr // element type when Kind == TypeArray
	Len     int       // array length when Kind == TypeArray
}

// TypeKind discriminates TypeExpr forms.
type TypeKind int

// TypeExpr kinds.
const (
	TypeInt TypeKind = iota
	TypeFloat
	TypeDouble
	TypeVoid
	TypeStruct
	TypePointer
	TypeArray
)

// Offset returns the byte offset of the type expression.
func (t *TypeExpr) Offset() int { return t.Off }

// ---------------------------------------------------------------- Expressions

// IntLit is an integer literal.
type IntLit struct {
	Off   int
	Value int64
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Off   int
	Value float64
	Text  string
}

// Ident is a reference to a named entity (variable, parameter, function).
type Ident struct {
	Off  int
	Name string
}

// Unary is a prefix operator application: -x, !x, *p (deref), &x (address).
type Unary struct {
	Off int
	Op  token.Kind
	X   Expr
}

// Binary is a binary operator application.
type Binary struct {
	Off  int
	Op   token.Kind
	X, Y Expr
}

// Index is a subscript a[i]; a may be an array or a pointer.
type Index struct {
	Off int
	X   Expr
	Idx Expr
}

// Member is a field access x.f or p->f (Arrow distinguishes them).
type Member struct {
	Off   int
	X     Expr
	Field string
	Arrow bool
}

// Call is a function or builtin call.
type Call struct {
	Off  int
	Fun  *Ident
	Args []Expr
}

// Cast is an explicit conversion (T)x.
type Cast struct {
	Off int
	To  *TypeExpr
	X   Expr
}

// Offset implementations.
func (e *IntLit) Offset() int   { return e.Off }
func (e *FloatLit) Offset() int { return e.Off }
func (e *Ident) Offset() int    { return e.Off }
func (e *Unary) Offset() int    { return e.Off }
func (e *Binary) Offset() int   { return e.Off }
func (e *Index) Offset() int    { return e.Off }
func (e *Member) Offset() int   { return e.Off }
func (e *Call) Offset() int     { return e.Off }
func (e *Cast) Offset() int     { return e.Off }

func (*IntLit) exprNode()   {}
func (*FloatLit) exprNode() {}
func (*Ident) exprNode()    {}
func (*Unary) exprNode()    {}
func (*Binary) exprNode()   {}
func (*Index) exprNode()    {}
func (*Member) exprNode()   {}
func (*Call) exprNode()     {}
func (*Cast) exprNode()     {}

// ---------------------------------------------------------------- Statements

// VarDecl declares a local or global variable, with an optional initializer
// (scalars only).
type VarDecl struct {
	Off  int
	Type *TypeExpr
	Name string
	Init Expr // may be nil
}

// Assign is an assignment statement: lhs op rhs where op is =, +=, -=, *=, /=.
// The parser assigns each assignment a unique ID used by analysis reports.
type Assign struct {
	Off int
	ID  int
	Op  token.Kind
	LHS Expr
	RHS Expr
}

// IncDec is a postfix x++ or x-- statement.
type IncDec struct {
	Off int
	Op  token.Kind // INC or DEC
	X   Expr
}

// ExprStmt evaluates an expression for its side effects (calls).
type ExprStmt struct {
	Off int
	X   Expr
}

// Block is a brace-delimited statement list.
type Block struct {
	Off   int
	Stmts []Stmt
}

// If is a conditional with an optional else branch.
type If struct {
	Off  int
	Cond Expr
	Then *Block
	Else Stmt // *Block, *If, or nil
}

// For is a C-style for loop. Init and Post may be nil; Cond may be nil
// (infinite loop). ID is a stable loop identifier; Line is the 1-based
// source line, used to name loops in reports ("file.c : 55" style).
type For struct {
	Off  int
	ID   int
	Line int
	Init Stmt // *Assign, *VarDecl, *IncDec, or nil
	Cond Expr
	Post Stmt // *Assign or *IncDec, or nil
	Body *Block
}

// While is a while loop, sharing loop IDs with For. DoWhile marks the
// do { } while (cond); form, whose body runs before the first test.
type While struct {
	Off     int
	ID      int
	Line    int
	Cond    Expr
	Body    *Block
	DoWhile bool
}

// Return returns from the enclosing function; X is nil for void returns.
type Return struct {
	Off int
	X   Expr
}

// Break exits the innermost loop.
type Break struct{ Off int }

// Continue jumps to the innermost loop's next iteration.
type Continue struct{ Off int }

// Offset implementations.
func (s *VarDecl) Offset() int  { return s.Off }
func (s *Assign) Offset() int   { return s.Off }
func (s *IncDec) Offset() int   { return s.Off }
func (s *ExprStmt) Offset() int { return s.Off }
func (s *Block) Offset() int    { return s.Off }
func (s *If) Offset() int       { return s.Off }
func (s *For) Offset() int      { return s.Off }
func (s *While) Offset() int    { return s.Off }
func (s *Return) Offset() int   { return s.Off }
func (s *Break) Offset() int    { return s.Off }
func (s *Continue) Offset() int { return s.Off }

func (*VarDecl) stmtNode()  {}
func (*Assign) stmtNode()   {}
func (*IncDec) stmtNode()   {}
func (*ExprStmt) stmtNode() {}
func (*Block) stmtNode()    {}
func (*If) stmtNode()       {}
func (*For) stmtNode()      {}
func (*While) stmtNode()    {}
func (*Return) stmtNode()   {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}

// ---------------------------------------------------------------- Declarations

// Param is one function parameter.
type Param struct {
	Off  int
	Type *TypeExpr
	Name string
}

// FuncDecl declares a function with a body.
type FuncDecl struct {
	Off    int
	Result *TypeExpr
	Name   string
	Params []Param
	Body   *Block
}

// GlobalDecl declares a global variable.
type GlobalDecl struct {
	Off  int
	Type *TypeExpr
	Name string
	Init Expr // scalar initializer, may be nil
}

// FieldDecl is one field of a struct declaration.
type FieldDecl struct {
	Off  int
	Type *TypeExpr
	Name string
}

// StructDecl declares a named struct type.
type StructDecl struct {
	Off    int
	Name   string
	Fields []FieldDecl
}

// Offset implementations.
func (d *FuncDecl) Offset() int   { return d.Off }
func (d *GlobalDecl) Offset() int { return d.Off }
func (d *StructDecl) Offset() int { return d.Off }

func (*FuncDecl) declNode()   {}
func (*GlobalDecl) declNode() {}
func (*StructDecl) declNode() {}

// Program is a parsed MiniC translation unit.
type Program struct {
	File     *source.File
	Decls    []Decl
	NumLoops int // number of loop IDs assigned (IDs are 0..NumLoops-1)
}

// Loops returns all loop statements in the program in source order, paired
// with the name of the function that contains each.
func (p *Program) Loops() []LoopInfo {
	var out []LoopInfo
	for _, d := range p.Decls {
		fd, ok := d.(*FuncDecl)
		if !ok {
			continue
		}
		collectLoops(fd.Body, fd.Name, &out)
	}
	return out
}

// LoopInfo describes one source loop.
type LoopInfo struct {
	ID   int
	Line int
	Func string
}

func collectLoops(s Stmt, fn string, out *[]LoopInfo) {
	switch s := s.(type) {
	case *Block:
		for _, st := range s.Stmts {
			collectLoops(st, fn, out)
		}
	case *If:
		collectLoops(s.Then, fn, out)
		if s.Else != nil {
			collectLoops(s.Else, fn, out)
		}
	case *For:
		*out = append(*out, LoopInfo{ID: s.ID, Line: s.Line, Func: fn})
		collectLoops(s.Body, fn, out)
	case *While:
		*out = append(*out, LoopInfo{ID: s.ID, Line: s.Line, Func: fn})
		collectLoops(s.Body, fn, out)
	}
}
