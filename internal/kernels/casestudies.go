package kernels

import "fmt"

// CaseStudy pairs an original kernel with its manually transformed version,
// as in the paper's §4.4 / Table 4.
type CaseStudy struct {
	Name string
	// Original and Transformed compute the same values.
	Original    Kernel
	Transformed Kernel
	// HotMarker names the loop whose time Table 4 reports (the paper
	// measures whole-program time for some studies and per-loop time for
	// others; we consistently measure the marked loop subtree).
	HotMarker string
}

// Bwaves models the 410.bwaves jacobian loop of Listing 7: the innermost i
// loop indexes a middle array dimension (non-unit stride in C layout, as in
// the Fortran original) and computes wrap-around neighbors with mod. The
// transformed version applies the paper's data-layout transformation (the i
// dimension becomes fastest-varying) and peels the last iteration to remove
// the mod.
func Bwaves(nx, ny, nz int) CaseStudy {
	// C layout of Fortran je(5,nx,ny,nz): je[k][j][i][m] — m fastest.
	orig := Kernel{Name: "bwaves-orig", Desc: "bwaves jacobian loop (Listing 7, original)", Source: fmt.Sprintf(`
double je[%d][%d][%d][5];
double jv[%d][%d][%d][5];
double q[%d][%d][%d][5];

void main() {
  int i;
  int j;
  int k;
  int m;
  int NX = %d;
  int NY = %d;
  int NZ = %d;
  for (k = 0; k < NZ; k++) {        /* @init */
    for (j = 0; j < NY; j++) {
      for (i = 0; i < NX; i++) {
        for (m = 0; m < 5; m++) {
          q[k][j][i][m] = 0.01 * (k + j) + 0.001 * i + 0.1 * m + 1.0;
        }
      }
    }
  }
  for (k = 0; k < NZ; k++) {        /* @hot */
    int kp1 = (k + 1) %% NZ;
    for (j = 0; j < NY; j++) {
      int jp1 = (j + 1) %% NY;
      for (i = 0; i < NX; i++) {    /* @inner */
        int ip1 = (i + 1) %% NX;
        double ros = q[kp1][jp1][ip1][0];
        double u = q[k][j][i][1];
        double v = q[k][j][i][2];
        je[k][j][i][0] = u * v + ros;          /* @S */
        je[k][j][i][1] = u * u - 0.5 * ros;
        je[k][j][i][2] = v * ros + u;
        jv[k][j][i][0] = u + v - ros;
        jv[k][j][i][1] = u * ros - v;
      }
    }
  }
  print(je[0][0][0][0]);
  print(je[%d][%d][%d][2]);
  print(jv[%d][%d][%d][1]);
}
`, nz, ny, nx, nz, ny, nx, nz, ny, nx, nx, ny, nz,
		nz-1, ny-1, nx-1, nz-1, ny-1, nx-1)}

	// Transformed layout: je[k][j][m][i] — i fastest.
	trans := Kernel{Name: "bwaves-transformed", Desc: "bwaves after the paper's layout transformation and mod peeling (Listing 7)", Source: fmt.Sprintf(`
double je[%d][%d][5][%d];
double jv[%d][%d][5][%d];
double q[%d][%d][5][%d];

void main() {
  int i;
  int j;
  int k;
  int m;
  int NX = %d;
  int NY = %d;
  int NZ = %d;
  for (k = 0; k < NZ; k++) {        /* @init */
    for (j = 0; j < NY; j++) {
      for (m = 0; m < 5; m++) {
        for (i = 0; i < NX; i++) {
          q[k][j][m][i] = 0.01 * (k + j) + 0.001 * i + 0.1 * m + 1.0;
        }
      }
    }
  }
  for (k = 0; k < NZ; k++) {        /* @hot */
    int kp1 = (k + 1) %% NZ;
    for (j = 0; j < NY; j++) {
      int jp1 = (j + 1) %% NY;
      for (i = 0; i < %d; i++) {    /* @inner */
        int ip1 = i + 1;
        double ros = q[kp1][jp1][0][ip1];
        double u = q[k][j][1][i];
        double v = q[k][j][2][i];
        je[k][j][0][i] = u * v + ros;          /* @S */
        je[k][j][1][i] = u * u - 0.5 * ros;
        je[k][j][2][i] = v * ros + u;
        jv[k][j][0][i] = u + v - ros;
        jv[k][j][1][i] = u * ros - v;
      }
      i = NX - 1;                   /* peeled last iteration */
      {
        int ip1 = 0;
        double ros = q[kp1][jp1][0][ip1];
        double u = q[k][j][1][i];
        double v = q[k][j][2][i];
        je[k][j][0][i] = u * v + ros;
        je[k][j][1][i] = u * u - 0.5 * ros;
        je[k][j][2][i] = v * ros + u;
        jv[k][j][0][i] = u + v - ros;
        jv[k][j][1][i] = u * ros - v;
      }
    }
  }
  print(je[0][0][0][0]);
  print(je[%d][%d][2][%d]);
  print(jv[%d][%d][1][%d]);
}
`, nz, ny, nx, nz, ny, nx, nz, ny, nx, nx, ny, nz, nx-1,
		nz-1, ny-1, nx-1, nz-1, ny-1, nx-1)}

	return CaseStudy{Name: "410.bwaves", Original: orig, Transformed: trans, HotMarker: "@hot"}
}

// Milc models the 433.milc su3 matrix-vector product of Listing 8: an
// array-of-structures lattice whose complex components interleave in
// memory, versus the transformed structure-of-arrays layout that exposes
// unit-stride access over sites.
func Milc(sites int) CaseStudy {
	orig := Kernel{Name: "milc-orig", Desc: "milc su3 matrix-vector product (Listing 8, original AoS layout)", Source: fmt.Sprintf(`
struct cplx { double r; double i; };
struct su3_matrix { struct cplx e[3][3]; };
struct su3_vector { struct cplx c[3]; };

struct su3_matrix lattice[%d];
struct su3_vector vec[%d];
struct su3_vector out_vec[%d];

void main() {
  int s;
  int i;
  int j;
  int S = %d;
  for (s = 0; s < S; s++) {      /* @init */
    for (i = 0; i < 3; i++) {
      for (j = 0; j < 3; j++) {
        lattice[s].e[i][j].r = 0.1 * i + 0.01 * j + 0.001 * s;
        lattice[s].e[i][j].i = 0.2 * i - 0.01 * j + 0.002 * s;
      }
      vec[s].c[i].r = 1.0 + 0.05 * i + 0.0001 * s;
      vec[s].c[i].i = 0.5 - 0.05 * i + 0.0002 * s;
    }
  }
  for (s = 0; s < S; s++) {      /* @hot */
    for (i = 0; i < 3; i++) {
      double xr = 0.0;
      double xi = 0.0;
      for (j = 0; j < 3; j++) {  /* @inner */
        double yr = lattice[s].e[i][j].r * vec[s].c[j].r -
                    lattice[s].e[i][j].i * vec[s].c[j].i;   /* @yr */
        double yi = lattice[s].e[i][j].r * vec[s].c[j].i +
                    lattice[s].e[i][j].i * vec[s].c[j].r;   /* @yi */
        xr = xr + yr;
        xi = xi + yi;
      }
      out_vec[s].c[i].r = xr;
      out_vec[s].c[i].i = xi;
    }
  }
  print(out_vec[0].c[0].r);
  print(out_vec[%d].c[1].i);
  print(out_vec[%d].c[2].r);
}
`, sites, sites, sites, sites, sites/2, sites-1)}

	trans := Kernel{Name: "milc-transformed", Desc: "milc after the paper's AoS→SoA layout transformation (Listing 8)", Source: fmt.Sprintf(`
struct lattice_dlt { double r[3][3][%d]; double i[3][3][%d]; };
struct vec_dlt { double r[3][%d]; double i[3][%d]; };

struct lattice_dlt lattice;
struct vec_dlt vec;
struct vec_dlt out_vec;

void main() {
  int s;
  int i;
  int j;
  int S = %d;
  for (s = 0; s < S; s++) {      /* @init */
    for (i = 0; i < 3; i++) {
      for (j = 0; j < 3; j++) {
        lattice.r[i][j][s] = 0.1 * i + 0.01 * j + 0.001 * s;
        lattice.i[i][j][s] = 0.2 * i - 0.01 * j + 0.002 * s;
      }
      vec.r[i][s] = 1.0 + 0.05 * i + 0.0001 * s;
      vec.i[i][s] = 0.5 - 0.05 * i + 0.0002 * s;
      out_vec.r[i][s] = 0.0;
      out_vec.i[i][s] = 0.0;
    }
  }
  for (i = 0; i < 3; i++) {      /* @hot */
    for (j = 0; j < 3; j++) {
      for (s = 0; s < %d; s++) { /* @vec-loop */
        double xr = lattice.r[i][j][s] * vec.r[j][s] -
                    lattice.i[i][j][s] * vec.i[j][s];   /* @yr */
        double xi = lattice.r[i][j][s] * vec.i[j][s] +
                    lattice.i[i][j][s] * vec.r[j][s];   /* @yi */
        out_vec.r[i][s] = out_vec.r[i][s] + xr;
        out_vec.i[i][s] = out_vec.i[i][s] + xi;
      }
    }
  }
  print(out_vec.r[0][0]);
  print(out_vec.i[1][%d]);
  print(out_vec.r[2][%d]);
}
`, sites, sites, sites, sites, sites, sites, sites/2, sites-1)}

	return CaseStudy{Name: "433.milc", Original: orig, Transformed: trans, HotMarker: "@hot"}
}

// Gromacs models the 435.gromacs inner force loop of Listing 9: an
// indirection array selects particle coordinates, defeating static
// dependence analysis even though the run-time indices are all distinct.
// The transformation strip-mines by 4 and distributes the loop into
// gather / compute / scatter phases; the compute phase vectorizes.
// A k that is not a multiple of 4 (the strip-mine width) is a spec error,
// returned rather than panicked so callers building case-study sets from
// configuration degrade into a diagnostic.
func Gromacs(k, m int) (CaseStudy, error) {
	if k%4 != 0 {
		return CaseStudy{}, fmt.Errorf("kernels: Gromacs k must be a multiple of 4, got %d", k)
	}
	body := `
int jjnr[%d];
double pos[%d];
double faction[%d];
`
	initCode := `
  for (i = 0; i < K; i++) {      /* @init-jjnr */
    jjnr[i] = (i * 7) % M;
  }
  for (i = 0; i < 3 * M; i++) {  /* @init-arrays */
    pos[i] = sin(0.01 * i) + 1.5;
    faction[i] = 0.25 * cos(0.02 * i);
  }
`
	checkCode := `
  chk = 0.0;
  for (i = 0; i < 3 * M; i++) {  /* @check */
    chk = chk + faction[i];
  }
  print(chk);
  print(faction[0]);
  print(faction[3 * M - 1]);
`
	// The force computation mirrors the real innerf.f water loop: each
	// gathered j-atom interacts with three i-atoms (O, H, H), so roughly a
	// hundred floating-point operations amortize each gather/scatter — the
	// ratio that makes the paper's strip-mining transformation profitable.
	forceBody := `
      double tx = 0.0;
      double ty = 0.0;
      double tz = 0.0;
      double dx1 = jx1 - 0.2;                            /* @ia1 */
      double dy1 = jy1 - 0.1;
      double dz1 = jz1 - 0.3;
      double rsq1 = dx1 * dx1 + dy1 * dy1 + dz1 * dz1;   /* @rsq */
      double rinv1 = 1.0 / sqrt(rsq1);
      double rsq2 = (jx1 + 0.15) * (jx1 + 0.15) + (jy1 - 0.25) * (jy1 - 0.25) + jz1 * jz1;
      double rinv2 = 1.0 / sqrt(rsq2);
      double rsq3 = jx1 * jx1 + (jy1 + 0.2) * (jy1 + 0.2) + (jz1 - 0.15) * (jz1 - 0.15);
      double rinv3 = 1.0 / sqrt(rsq3);
      double rinvsq1 = rinv1 * rinv1;
      double rinv61 = rinvsq1 * rinvsq1 * rinvsq1;
      double rinv121 = rinv61 * rinv61;
      double vnb = 0.003 * rinv121 - 0.02 * rinv61;      /* @vnb */
      double vcoul1 = 0.9 * rinv1;
      double vcoul2 = 0.45 * rinv2;
      double vcoul3 = 0.45 * rinv3;
      double fs1 = (12.0 * 0.003 * rinv121 - 6.0 * 0.02 * rinv61 + vcoul1) * rinvsq1;
      double fs2 = vcoul2 * rinv2 * rinv2;
      double fs3 = vcoul3 * rinv3 * rinv3;
      tx = dx1 * fs1 + jx1 * fs2 + jx1 * fs3;            /* @tx */
      ty = dy1 * fs1 + jy1 * fs2 + jy1 * fs3;
      tz = dz1 * fs1 + jz1 * fs2 + jz1 * fs3;
      vnbtot = vnbtot + vnb + vcoul1 + vcoul2 + vcoul3;  /* @acc */
`
	orig := Kernel{Name: "gromacs-orig", Desc: "gromacs indirected force loop (Listing 9, original)", Source: fmt.Sprintf(`%s
double vnbtot_out;

void main() {
  int i;
  int kk;
  int K = %d;
  int M = %d;
  double chk;
  double vnbtot = 0.0;
%s
  for (kk = 0; kk < K; kk++) {   /* @hot */
    int jnr = jjnr[kk];
    int j3 = 3 * jnr;
    {
      double jx1 = pos[j3];
      double jy1 = pos[j3 + 1];
      double jz1 = pos[j3 + 2];
%s
      faction[j3] = faction[j3] - tx;                    /* @fj */
      faction[j3 + 1] = faction[j3 + 1] - ty;
      faction[j3 + 2] = faction[j3 + 2] - tz;
    }
  }
  vnbtot_out = vnbtot;
  print(vnbtot);
%s}
`, fmt.Sprintf(body, k, 3*m, 3*m), k, m, initCode, forceBody, checkCode)}

	trans := Kernel{Name: "gromacs-transformed", Desc: "gromacs strip-mined and distributed (Listing 9, transformed)", Source: fmt.Sprintf(`%s
int vect_j3[4];
double vect_jx1[4];
double vect_jy1[4];
double vect_jz1[4];
double vect_fjx1[4];
double vect_fjy1[4];
double vect_fjz1[4];
double vnbtot_out;

void main() {
  int i;
  int kk;
  int kv;
  int K = %d;
  int M = %d;
  double chk;
  double vnbtot = 0.0;
%s
  for (kk = 0; kk < K; kk = kk + 4) {   /* @hot */
    /* Gather phase, fully unrolled (as a production compiler unrolls a
       constant trip-4 loop). */
    for (kv = 0; kv < 4; kv++) {        /* @gather */
      int jnr = jjnr[kk + kv];
      vect_j3[kv] = 3 * jnr;
    }
    vect_jx1[0] = pos[vect_j3[0]]; vect_jy1[0] = pos[vect_j3[0] + 1]; vect_jz1[0] = pos[vect_j3[0] + 2];
    vect_jx1[1] = pos[vect_j3[1]]; vect_jy1[1] = pos[vect_j3[1] + 1]; vect_jz1[1] = pos[vect_j3[1] + 2];
    vect_jx1[2] = pos[vect_j3[2]]; vect_jy1[2] = pos[vect_j3[2] + 1]; vect_jz1[2] = pos[vect_j3[2] + 2];
    vect_jx1[3] = pos[vect_j3[3]]; vect_jy1[3] = pos[vect_j3[3] + 1]; vect_jz1[3] = pos[vect_j3[3] + 2];
    vect_fjx1[0] = faction[vect_j3[0]]; vect_fjy1[0] = faction[vect_j3[0] + 1]; vect_fjz1[0] = faction[vect_j3[0] + 2];
    vect_fjx1[1] = faction[vect_j3[1]]; vect_fjy1[1] = faction[vect_j3[1] + 1]; vect_fjz1[1] = faction[vect_j3[1] + 2];
    vect_fjx1[2] = faction[vect_j3[2]]; vect_fjy1[2] = faction[vect_j3[2] + 1]; vect_fjz1[2] = faction[vect_j3[2] + 2];
    vect_fjx1[3] = faction[vect_j3[3]]; vect_fjy1[3] = faction[vect_j3[3] + 1]; vect_fjz1[3] = faction[vect_j3[3] + 2];
    for (kv = 0; kv < 4; kv++) {        /* @vec-loop */
      double jx1 = vect_jx1[kv];
      double jy1 = vect_jy1[kv];
      double jz1 = vect_jz1[kv];
%s
      vect_fjx1[kv] = vect_fjx1[kv] - tx;                /* @fj */
      vect_fjy1[kv] = vect_fjy1[kv] - ty;
      vect_fjz1[kv] = vect_fjz1[kv] - tz;
    }
    /* Scatter phase, fully unrolled. */
    faction[vect_j3[0]] = vect_fjx1[0]; faction[vect_j3[0] + 1] = vect_fjy1[0]; faction[vect_j3[0] + 2] = vect_fjz1[0];
    faction[vect_j3[1]] = vect_fjx1[1]; faction[vect_j3[1] + 1] = vect_fjy1[1]; faction[vect_j3[1] + 2] = vect_fjz1[1];
    faction[vect_j3[2]] = vect_fjx1[2]; faction[vect_j3[2] + 1] = vect_fjy1[2]; faction[vect_j3[2] + 2] = vect_fjz1[2];
    faction[vect_j3[3]] = vect_fjx1[3]; faction[vect_j3[3] + 1] = vect_fjy1[3]; faction[vect_j3[3] + 2] = vect_fjz1[3];
  }
  vnbtot_out = vnbtot;
  print(vnbtot);
%s}
`, fmt.Sprintf(body, k, 3*m, 3*m), k, m, initCode, forceBody, checkCode)}

	return CaseStudy{Name: "435.gromacs", Original: orig, Transformed: trans, HotMarker: "@hot"}, nil
}

// CaseStudies returns all five Table 4 studies at analysis-friendly sizes.
func CaseStudies() []CaseStudy {
	// 128 is a multiple of the strip-mine width, so the constructor cannot
	// fail here.
	gromacs, _ := Gromacs(128, 512)
	return []CaseStudy{
		{
			Name:        "Gauss-Seidel",
			Original:    GaussSeidel(48, 4),
			Transformed: GaussSeidelTransformed(48, 4),
			HotMarker:   "@time-loop",
		},
		{
			// A 10×10 block grid gives 64% interior blocks; the paper's
			// 16×16 grid had 77%. Interior blocks are the vectorizable
			// ones, so the speedup grows with this share.
			Name:        "2-D PDE Solver",
			Original:    PDESolver(16, 10),
			Transformed: PDESolverTransformed(16, 10),
			HotMarker:   "@grid-j",
		},
		Bwaves(16, 8, 8),
		Milc(256),
		gromacs,
	}
}
