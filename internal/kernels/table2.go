package kernels

import "fmt"

// GaussSeidel is the paper's 2-D 9-point Gauss-Seidel stencil (Listing 5,
// original form). The innermost loop carries a flow dependence through
// A[i][j-1], so production compilers refuse to vectorize it; the dynamic
// analysis nevertheless finds unit-stride potential in the row-(i-1)
// additions and non-unit (wavefront-diagonal) potential in the chained
// operations.
func GaussSeidel(n, t int) Kernel {
	src := fmt.Sprintf(`
double A[%d][%d];

void main() {
  int t;
  int i;
  int j;
  int N = %d;
  int T = %d;
  double cnst = 1.0 / 9.0;
  for (i = 0; i < N; i++) {       /* @init-outer */
    for (j = 0; j < N; j++) {
      A[i][j] = 0.001 * (i + 2 * j) + 1.0;
    }
  }
  for (t = 0; t < T; t++) {       /* @time-loop */
    for (i = 1; i < N - 1; i++) {   /* @i-loop */
      for (j = 1; j < N - 1; j++) { /* @j-loop */
        A[i][j] = (A[i-1][j-1] + A[i-1][j] +
                   A[i-1][j+1] + A[i][j-1] +
                   A[i][j] + A[i][j+1] +
                   A[i+1][j-1] + A[i+1][j] +
                   A[i+1][j+1]) * cnst;   /* @S */
      }
    }
  }
  print(A[N/2][N/2]);
  print(A[1][1]);
  print(A[N-2][N-2]);
}
`, n, n, n, t)
	return Kernel{Name: "gauss-seidel", Source: src,
		Desc: "2-D 9-point Gauss-Seidel stencil (paper Listing 5, original)"}
}

// GaussSeidelTransformed is the paper's manually transformed Gauss-Seidel
// (Listing 5, transformed form): the row-(i-1)/(i)/(i+1) contributions that
// do not participate in the j recurrence are split into a first, fully
// vectorizable j loop writing temp[], and a second loop that keeps only the
// A[i][j-1] recurrence.
func GaussSeidelTransformed(n, t int) Kernel {
	src := fmt.Sprintf(`
double A[%d][%d];
double temp[%d];

void main() {
  int t;
  int i;
  int j;
  int N = %d;
  int T = %d;
  double cnst = 1.0 / 9.0;
  for (i = 0; i < N; i++) {       /* @init-outer */
    for (j = 0; j < N; j++) {
      A[i][j] = 0.001 * (i + 2 * j) + 1.0;
    }
  }
  for (t = 0; t < T; t++) {       /* @time-loop */
    for (i = 1; i < N - 1; i++) {   /* @i-loop */
      for (j = 1; j < N - 1; j++) { /* @vec-loop */
        temp[j] = A[i-1][j-1] + A[i-1][j] +
                  A[i-1][j+1] + A[i][j] +
                  A[i][j+1] + A[i+1][j-1] +
                  A[i+1][j] + A[i+1][j+1];   /* @T */
      }
      for (j = 1; j < N - 1; j++) { /* @serial-loop */
        A[i][j] = cnst * (A[i][j-1] + temp[j]);  /* @S */
      }
    }
  }
  print(A[N/2][N/2]);
  print(A[1][1]);
  print(A[N-2][N-2]);
}
`, n, n, n, n, t)
	return Kernel{Name: "gauss-seidel-transformed", Source: src,
		Desc: "Gauss-Seidel after the paper's loop-splitting transformation (Listing 5)"}
}

// PDESolver is the core computation of the 2-D PDE grid solver from PETSc's
// solid-fuel-ignition example (paper Listing 6, original form): a per-block
// kernel whose innermost loop contains a data-dependent boundary-condition
// check that forces compilers to be conservative.
//
// The grid is blocksGrid×blocksGrid blocks of blockN×blockN cells.
func PDESolver(blockN, blocksGrid int) Kernel {
	src := fmt.Sprintf(`
double x[%d][%d];
double f[%d][%d];

void solveBlock(int xs, int ys, int xm, int ym, int mx, int my,
                double hydhx, double hxdhy, double sc) {
  int i;
  int j;
  double u;
  double uxx;
  double uyy;
  for (j = ys; j < ys + ym; j++) {     /* @block-j */
    for (i = xs; i < xs + xm; i++) {   /* @block-i */
      if (i == 0 || j == 0 || i == mx - 1 || j == my - 1) {
        f[j][i] = x[j][i];
      } else {
        u = x[j][i];
        uxx = (2.0 * u - x[j][i-1] - x[j][i+1]) * hydhx;   /* @uxx */
        uyy = (2.0 * u - x[j-1][i] - x[j+1][i]) * hxdhy;   /* @uyy */
        f[j][i] = uxx + uyy - sc * exp(u);                  /* @F */
      }
    }
  }
}

void main() {
  int i;
  int j;
  int bi;
  int bj;
  int B = %d;
  int G = %d;
  int M = %d;
  for (j = 0; j < M; j++) {        /* @init-j */
    for (i = 0; i < M; i++) {
      x[j][i] = 0.05 + 0.0001 * (i + j) + 0.00001 * i * j;
    }
  }
  for (bj = 0; bj < G; bj++) {     /* @grid-j */
    for (bi = 0; bi < G; bi++) {   /* @grid-i */
      solveBlock(bi * B, bj * B, B, B, M, M, 1.0, 1.0, 0.5);
    }
  }
  print(f[0][0]);
  print(f[M/2][M/2]);
  print(f[M-1][M-1]);
}
`, blockN*blocksGrid, blockN*blocksGrid, blockN*blocksGrid, blockN*blocksGrid,
		blockN, blocksGrid, blockN*blocksGrid)
	return Kernel{Name: "pde-solver", Source: src,
		Desc: "2-D PDE grid solver per-block kernel (PETSc ex5 shape; paper Listing 6, original)"}
}

// PDESolverTransformed is the paper's transformed PDE solver (Listing 6):
// the boundary test is hoisted out of the per-cell loops, so interior blocks
// run a clean, vectorizable loop nest while boundary blocks keep the
// original branchy code.
func PDESolverTransformed(blockN, blocksGrid int) Kernel {
	src := fmt.Sprintf(`
double x[%d][%d];
double f[%d][%d];

void solveBoundary(int xs, int ys, int xm, int ym, int mx, int my,
                   double hydhx, double hxdhy, double sc) {
  int i;
  int j;
  double u;
  double uxx;
  double uyy;
  for (j = ys; j < ys + ym; j++) {     /* @bnd-j */
    for (i = xs; i < xs + xm; i++) {   /* @bnd-i */
      if (i == 0 || j == 0 || i == mx - 1 || j == my - 1) {
        f[j][i] = x[j][i];
      } else {
        u = x[j][i];
        uxx = (2.0 * u - x[j][i-1] - x[j][i+1]) * hydhx;
        uyy = (2.0 * u - x[j-1][i] - x[j+1][i]) * hxdhy;
        f[j][i] = uxx + uyy - sc * exp(u);
      }
    }
  }
}

void solveInterior(int xs, int ys, int xm, int ym,
                   double hydhx, double hxdhy, double sc) {
  int i;
  int j;
  double u;
  double uxx;
  double uyy;
  for (j = ys; j < ys + ym; j++) {     /* @int-j */
    for (i = xs; i < xs + xm; i++) {   /* @int-i */
      u = x[j][i];
      uxx = (2.0 * u - x[j][i-1] - x[j][i+1]) * hydhx;   /* @uxx */
      uyy = (2.0 * u - x[j-1][i] - x[j+1][i]) * hxdhy;   /* @uyy */
      f[j][i] = uxx + uyy - sc * exp(u);                  /* @F */
    }
  }
}

void main() {
  int i;
  int j;
  int bi;
  int bj;
  int B = %d;
  int G = %d;
  int M = %d;
  for (j = 0; j < M; j++) {        /* @init-j */
    for (i = 0; i < M; i++) {
      x[j][i] = 0.05 + 0.0001 * (i + j) + 0.00001 * i * j;
    }
  }
  for (bj = 0; bj < G; bj++) {     /* @grid-j */
    for (bi = 0; bi < G; bi++) {   /* @grid-i */
      if (bj == 0 || bi == 0 || bj == G - 1 || bi == G - 1) {
        solveBoundary(bi * B, bj * B, B, B, M, M, 1.0, 1.0, 0.5);
      } else {
        solveInterior(bi * B, bj * B, B, B, 1.0, 1.0, 0.5);
      }
    }
  }
  print(f[0][0]);
  print(f[M/2][M/2]);
  print(f[M-1][M-1]);
}
`, blockN*blocksGrid, blockN*blocksGrid, blockN*blocksGrid, blockN*blocksGrid,
		blockN, blocksGrid, blockN*blocksGrid)
	return Kernel{Name: "pde-solver-transformed", Source: src,
		Desc: "PDE solver with the boundary check hoisted per block (paper Listing 6, transformed)"}
}
