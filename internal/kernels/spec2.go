package kernels

import "fmt"

// Additional Table 1 loops. The paper reports several hot loops per
// benchmark; these entries model the rows whose dependence/stride shapes
// differ from the primary kernels in spec.go.

// specExtra returns the second wave of Table 1 loop kernels.
func specExtra() []SpecBenchmark {
	return []SpecBenchmark{
		specBwavesBackSubst(),
		specMilcGauge(),
		specGromacsNS(),
		specLeslie3dY(),
		specNamdPairlist(),
		specPovrayCSG(),
		specCalculixFrontal(),
		specWrfVertical(),
	}
}

// specBwavesBackSubst models block_solver.f:176: the back-substitution
// sweep of the block solver, whose recurrence runs across cells — far less
// concurrency than the forward mat-vec (the paper reports avg concurrency
// 8.3 vs 39.9 and packed 66.4%: the 5-wide inner loops still vectorize).
func specBwavesBackSubst() SpecBenchmark {
	const cells = 384
	k := Kernel{Name: "410.bwaves-backsub", Desc: "block solver back-substitution", Source: fmt.Sprintf(`
double y[%d][5];
double x[%d][5];
double D[5][5];

void main() {
  int c;
  int mi;
  int mj;
  int C = %d;
  for (mi = 0; mi < 5; mi++) {     /* @init-d */
    for (mj = 0; mj < 5; mj++) {
      D[mi][mj] = 0.02 * mi - 0.01 * mj + 0.5;
    }
  }
  for (c = 0; c < C; c++) {        /* @init-y */
    for (mi = 0; mi < 5; mi++) {
      y[c][mi] = 0.5 + 0.01 * mi + 0.0002 * c;
    }
  }
  for (mi = 0; mi < 5; mi++) {     /* @seed */
    x[C-1][mi] = y[C-1][mi];
  }
  for (c = C - 2; c >= 0; c = c - 1) {  /* @hot */
    for (mi = 0; mi < 5; mi++) {
      double s = y[c][mi];
      for (mj = 0; mj < 5; mj++) {      /* @mac-loop */
        s = s - D[mi][mj] * x[c+1][mj]; /* @mac */
      }
      x[c][mi] = s;
    }
  }
  print(x[0][0]);
  print(x[0][4]);
}
`, cells, cells, cells)}
	return SpecBenchmark{Name: "410.bwaves", Kernel: k, Targets: []SpecTarget{
		{Label: "block_solver.f : 176", Marker: "@hot"},
	}}
}

// specMilcGauge models gauge_stuff.c/path_product.c: chained su3
// matrix-matrix products along lattice paths. Each path is a serial chain
// of products, but every site's path is independent — the paper reports
// enormous concurrency (10453–73316), zero packed, and a large non-unit
// share at the matrix stride.
func specMilcGauge() SpecBenchmark {
	const sites = 256
	k := Kernel{Name: "433.milc-gauge", Desc: "chained su3 path products over sites", Source: fmt.Sprintf(`
struct cplx { double r; double i; };
struct su3m { struct cplx e[2][2]; };

struct su3m link0[%d];
struct su3m link1[%d];
struct su3m link2[%d];
struct su3m acc[%d];

void main() {
  int s;
  int i;
  int j;
  int kk;
  int S = %d;
  for (s = 0; s < S; s++) {        /* @init */
    for (i = 0; i < 2; i++) {
      for (j = 0; j < 2; j++) {
        link0[s].e[i][j].r = 0.4 + 0.001 * s + 0.01 * i;
        link0[s].e[i][j].i = 0.1 - 0.002 * s + 0.01 * j;
        link1[s].e[i][j].r = 0.3 + 0.0015 * s - 0.01 * i;
        link1[s].e[i][j].i = 0.2 + 0.001 * s - 0.02 * j;
        link2[s].e[i][j].r = 0.25 - 0.001 * s;
        link2[s].e[i][j].i = 0.15 + 0.0005 * s;
      }
    }
  }
  for (s = 0; s < S; s++) {        /* @hot */
    /* acc = link0 * link1 (complex 2x2 product) */
    for (i = 0; i < 2; i++) {
      for (j = 0; j < 2; j++) {    /* @prod1 */
        double xr = 0.0;
        double xi = 0.0;
        for (kk = 0; kk < 2; kk++) {
          xr = xr + link0[s].e[i][kk].r * link1[s].e[kk][j].r -
                    link0[s].e[i][kk].i * link1[s].e[kk][j].i;   /* @xr */
          xi = xi + link0[s].e[i][kk].r * link1[s].e[kk][j].i +
                    link0[s].e[i][kk].i * link1[s].e[kk][j].r;
        }
        acc[s].e[i][j].r = xr;
        acc[s].e[i][j].i = xi;
      }
    }
    /* acc = acc * link2: extends each site's chain */
    for (i = 0; i < 2; i++) {
      for (j = 0; j < 2; j++) {    /* @prod2 */
        double yr = 0.0;
        double yi = 0.0;
        for (kk = 0; kk < 2; kk++) {
          yr = yr + acc[s].e[i][kk].r * link2[s].e[kk][j].r -
                    acc[s].e[i][kk].i * link2[s].e[kk][j].i;     /* @yr */
          yi = yi + acc[s].e[i][kk].r * link2[s].e[kk][j].i +
                    acc[s].e[i][kk].i * link2[s].e[kk][j].r;
        }
        acc[s].e[i][j].r = yr * 0.5 + acc[s].e[i][j].r * 0.5;
        acc[s].e[i][j].i = yi * 0.5 + acc[s].e[i][j].i * 0.5;
      }
    }
  }
  print(acc[0].e[0][0].r);
  print(acc[%d].e[1][1].i);
}
`, sites, sites, sites, sites, sites, sites-1)}
	return SpecBenchmark{Name: "433.milc", Kernel: k, Targets: []SpecTarget{
		{Label: "path_product.c : 49", Marker: "@hot"},
	}}
}

// specGromacsNS models the ns.c neighbor-search loops: all-pairs distance
// checks with a data-dependent count update — branchy, irregular output,
// zero packed, but the distance arithmetic itself is concurrent.
func specGromacsNS() SpecBenchmark {
	const atoms = 96
	k := Kernel{Name: "435.gromacs-ns", Desc: "neighbor-search distance checks", Source: fmt.Sprintf(`
double px[%d];
double py[%d];
double pz[%d];
int count[%d];

void main() {
  int i;
  int j;
  int A = %d;
  double cut2 = 1.2;
  for (i = 0; i < A; i++) {     /* @init */
    px[i] = sin(0.3 * i) * 2.0;
    py[i] = cos(0.23 * i) * 2.0;
    pz[i] = sin(0.17 * i + 1.0) * 2.0;
    count[i] = 0;
  }
  for (i = 0; i < A; i++) {     /* @hot */
    for (j = i + 1; j < A; j++) {   /* @pairs */
      double dx = px[i] - px[j];    /* @dx */
      double dy = py[i] - py[j];
      double dz = pz[i] - pz[j];
      double r2 = dx * dx + dy * dy + dz * dz;   /* @r2 */
      if (r2 < cut2) {
        count[i] = count[i] + 1;
      }
    }
  }
  printi(count[0]);
  printi(count[%d]);
}
`, atoms, atoms, atoms, atoms, atoms, atoms/2)}
	return SpecBenchmark{Name: "435.gromacs", Kernel: k, Targets: []SpecTarget{
		{Label: "ns.c : 1264", Marker: "@hot"},
	}}
}

// specLeslie3dY models the cross-direction flux sweep (tml.f:889): the same
// flux stencil as tml.f:522 but differencing along the slower-varying j
// dimension. The loads remain unit-stride in i (the inner loop), so the
// loop still vectorizes — the contrast with the i-difference loop is the
// dependence direction, not the stride.
func specLeslie3dY() SpecBenchmark {
	const n = 20
	k := Kernel{Name: "437.leslie3d-y", Desc: "flux differences along j", Source: fmt.Sprintf(`
double q[%d][%d][%d];
double fy[%d][%d][%d];

void main() {
  int i;
  int j;
  int kk;
  int N = %d;
  for (kk = 0; kk < N; kk++) {      /* @init */
    for (j = 0; j < N; j++) {
      for (i = 0; i < N; i++) {
        q[kk][j][i] = 1.5 + 0.02 * i - 0.01 * j + 0.005 * kk;
      }
    }
  }
  for (kk = 0; kk < N; kk++) {      /* @hot */
    for (j = 0; j < N - 1; j++) {
      for (i = 0; i < N; i++) {     /* @flux */
        fy[kk][j][i] = 0.5 * (q[kk][j+1][i] - q[kk][j][i]) +
                       0.125 * (q[kk][j+1][i] + q[kk][j][i]);  /* @S */
      }
    }
  }
  print(fy[0][0][0]);
  print(fy[%d][%d][%d]);
}
`, n, n, n, n, n, n, n, n-1, n-2, n-1)}
	return SpecBenchmark{Name: "437.leslie3d", Kernel: k, Targets: []SpecTarget{
		{Label: "tml.f : 889", Marker: "@hot"},
	}}
}

// specNamdPairlist models ComputeList.C:71: building the pairlist itself —
// distance tests with data-dependent appends to a list (an irregular store
// stream), zero packed.
func specNamdPairlist() SpecBenchmark {
	const atoms = 128
	k := Kernel{Name: "444.namd-list", Desc: "pairlist construction", Source: fmt.Sprintf(`
double px[%d];
double py[%d];
double pz[%d];
int list[%d];
int nPairs;

void main() {
  int i;
  int j;
  int n;
  int A = %d;
  double cut2 = 2.0;
  for (i = 0; i < A; i++) {     /* @init */
    px[i] = sin(0.21 * i) * 2.5;
    py[i] = cos(0.19 * i) * 2.5;
    pz[i] = sin(0.11 * i + 0.7) * 2.5;
  }
  n = 0;
  for (i = 0; i < A; i++) {     /* @hot */
    for (j = i + 1; j < A; j++) {
      double dx = px[i] - px[j];     /* @dx */
      double dy = py[i] - py[j];
      double dz = pz[i] - pz[j];
      double r2 = dx * dx + dy * dy + dz * dz;  /* @r2 */
      if (r2 < cut2 && n < %d) {
        list[n] = i * A + j;
        n = n + 1;
      }
    }
  }
  nPairs = n;
  printi(n);
}
`, atoms, atoms, atoms, atoms*atoms/4, atoms, atoms*atoms/4)}
	return SpecBenchmark{Name: "444.namd", Kernel: k, Targets: []SpecTarget{
		{Label: "ComputeList.C : 71", Marker: "@hot"},
	}}
}

// specPovrayCSG models csg.cpp:248: per-object constructive-solid-geometry
// tests — tiny fixed-size vector arithmetic under data-dependent branching,
// with the paper's characteristically small average vector sizes.
func specPovrayCSG() SpecBenchmark {
	const objs = 384
	k := Kernel{Name: "453.povray-csg", Desc: "CSG inside-test sweep", Source: fmt.Sprintf(`
double ox[%d];
double oy[%d];
double rad[%d];
double hits;

void main() {
  int o;
  int O = %d;
  double qx = 0.3;
  double qy = 0.6;
  double h = 0.0;
  for (o = 0; o < O; o++) {     /* @init */
    ox[o] = sin(0.4 * o);
    oy[o] = cos(0.27 * o);
    rad[o] = 0.3 + 0.2 * sin(0.05 * o) * sin(0.05 * o);
  }
  for (o = 0; o < O; o++) {     /* @hot */
    double dx = qx - ox[o];     /* @dx */
    double dy = qy - oy[o];
    double d2 = dx * dx + dy * dy;   /* @d2 */
    if (d2 < rad[o] * rad[o]) {
      h = h + 1.0;
      if (d2 < 0.01) {
        h = h + 0.5;
      }
    }
  }
  hits = h;
  print(h);
}
`, objs, objs, objs, objs)}
	return SpecBenchmark{Name: "453.povray", Kernel: k, Targets: []SpecTarget{
		{Label: "csg.cpp : 248", Marker: "@hot"},
	}}
}

// specCalculixFrontal models FrontMtx_update.c:207: dense frontal-matrix
// rank updates, F[i][j] -= L[i] * U[j] with j innermost — fully
// vectorizable dense linear algebra (the paper reports 91.5% packed).
func specCalculixFrontal() SpecBenchmark {
	const front = 48
	k := Kernel{Name: "454.calculix-front", Desc: "frontal matrix rank update", Source: fmt.Sprintf(`
double F[%d][%d];
double L[%d];
double U[%d];

void main() {
  int i;
  int j;
  int r;
  int N = %d;
  for (i = 0; i < N; i++) {      /* @init */
    L[i] = 0.02 * i + 0.3;
    U[i] = 0.7 - 0.01 * i;
    for (j = 0; j < N; j++) {
      F[i][j] = 1.0 + 0.001 * (i + j);
    }
  }
  for (r = 0; r < 4; r++) {      /* @hot */
    for (i = 0; i < N; i++) {
      for (j = 0; j < N; j++) {  /* @rank1 */
        F[i][j] = F[i][j] - L[i] * U[j];   /* @S */
      }
    }
  }
  print(F[0][0]);
  print(F[%d][%d]);
}
`, front, front, front, front, front, front-1, front-1)}
	return SpecBenchmark{Name: "454.calculix", Kernel: k, Targets: []SpecTarget{
		{Label: "FrontMtx_update.c : 207", Marker: "@hot"},
	}}
}

// specWrfVertical models solve_em.F90:884: a vertical (k-direction) column
// update. In the Fortran original k is the fastest dimension for these
// arrays; in C layout the column walk strides by a full plane — the
// non-unit-stride signature (the paper reports avg vec sizes of 117 at
// non-unit stride 29.1 for the related rows).
func specWrfVertical() SpecBenchmark {
	const n = 18
	k := Kernel{Name: "481.wrf-vert", Desc: "vertical column integration", Source: fmt.Sprintf(`
double w[%d][%d][%d];
double rho[%d][%d][%d];
double out[%d][%d][%d];

void main() {
  int i;
  int j;
  int kk;
  int N = %d;
  for (kk = 0; kk < N; kk++) {      /* @init */
    for (j = 0; j < N; j++) {
      for (i = 0; i < N; i++) {
        w[kk][j][i] = 0.1 + 0.01 * kk - 0.002 * (i + j);
        rho[kk][j][i] = 1.2 - 0.003 * kk;
      }
    }
  }
  for (j = 0; j < N; j++) {         /* @hot */
    for (i = 0; i < N; i++) {
      for (kk = 0; kk < N - 1; kk++) {   /* @column */
        out[kk][j][i] = 0.5 * (w[kk][j][i] + w[kk+1][j][i]) * rho[kk][j][i];  /* @S */
      }
    }
  }
  print(out[0][0][0]);
  print(out[%d][%d][%d]);
}
`, n, n, n, n, n, n, n, n, n, n, n-2, n-1, n-1)}
	return SpecBenchmark{Name: "481.wrf", Kernel: k, Targets: []SpecTarget{
		{Label: "solve_em.F90 : 884", Marker: "@hot"},
	}}
}
