// Package kernels holds the MiniC sources of every benchmark the
// reproduction analyzes: the paper's explanatory Listings 1–4, the
// stand-alone kernels of Table 2 (2-D Gauss-Seidel, 2-D PDE grid solver),
// UTDSP-style kernels in array and pointer form (Table 3), SPEC
// CFP2006-shaped loop kernels (Table 1), and the original/transformed pairs
// of the §4.4 case studies (Table 4).
//
// Each kernel is plain MiniC text; hot loops are located by searching the
// source for "@name" markers inside comments (comments are invisible to the
// lexer, so markers never perturb compilation). This keeps loop references
// robust against source edits, the way the paper keys its tables by
// "file : line".
package kernels

import (
	"fmt"
	"strings"
)

// Kernel is one analyzable MiniC program.
type Kernel struct {
	// Name identifies the kernel in reports ("410.bwaves block_solver:55").
	Name string
	// Source is the complete MiniC program, with a main() entry point.
	Source string
	// Desc explains what the kernel models.
	Desc string
}

// FindLine returns the 1-based source line containing the first occurrence
// of the given marker (by convention "@name" inside a comment), matched as a
// whole word so "@S2" does not match "@S2-outer". A missing marker is an
// error, not a panic, so a malformed kernel spec degrades into a diagnostic
// instead of crashing the caller.
func (k Kernel) FindLine(marker string) (int, error) {
	isWordChar := func(c byte) bool {
		return c == '-' || c == '_' ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
	}
	for i, line := range strings.Split(k.Source, "\n") {
		for at := 0; ; {
			j := strings.Index(line[at:], marker)
			if j < 0 {
				break
			}
			end := at + j + len(marker)
			if end >= len(line) || !isWordChar(line[end]) {
				return i + 1, nil
			}
			at = end
		}
	}
	return 0, fmt.Errorf("kernels: %s: no marker %q", k.Name, marker)
}

// LineOf is the panicking convenience form of FindLine for tests and
// examples, where a missing marker is an authoring bug worth a crash.
// Production callers use FindLine and propagate the error.
func (k Kernel) LineOf(marker string) int {
	line, err := k.FindLine(marker)
	if err != nil {
		panic(err.Error())
	}
	return line
}

// Listing1 is the paper's first running example (§2.1): a serial
// recurrence S1 followed by a doubly nested loop whose statement S2 is
// independent for a fixed j and all i — the case Kumar-style critical-path
// partitions fail to expose but Algorithm 1 recovers (Figure 1).
func Listing1(n int) Kernel {
	src := fmt.Sprintf(`
double A[%d];
double B[%d][%d];

void main() {
  int i;
  int j;
  int N = %d;
  A[0] = 1.5;
  for (i = 0; i < N; i++) {       /* @init */
    B[0][i] = 0.5 + 0.001 * i;
  }
  for (i = 1; i < N; i++) {       /* @S1-loop */
    A[i] = 2.0 * A[i-1];          /* @S1 */
  }
  for (i = 0; i < N; i++) {       /* @S2-outer */
    for (j = 1; j < N; j++) {     /* @S2-inner */
      B[j][i] = B[j-1][i] * A[i]; /* @S2 */
    }
  }
  print(B[N-1][N-1]);
}
`, n, n, n, n)
	return Kernel{
		Name:   "listing1",
		Source: src,
		Desc:   "paper Listing 1 / Figure 1: recurrence chain + column-recurrence nest",
	}
}

// Listing2 is the paper's second running example (§2.1): a loop-carried
// dependence from S2 to S1 defeats Larus-style loop-level analysis, yet
// both statements are fully parallel under dependence-preserving reordering
// (Figure 2).
func Listing2(n int) Kernel {
	src := fmt.Sprintf(`
double A[%d];
double B[%d];
double C[%d];

void main() {
  int i;
  int N = %d;
  for (i = 0; i < N; i++) {    /* @init */
    C[i] = 0.25 * i + 1.0;
  }
  B[0] = 2.0;
  for (i = 1; i < N; i++) {    /* @main-loop */
    A[i] = 2.0 * B[i-1];       /* @S1 */
    B[i] = 0.5 * C[i];         /* @S2 */
  }
  print(A[N-1] + B[N-1]);
}
`, n, n, n, n)
	return Kernel{
		Name:   "listing2",
		Source: src,
		Desc:   "paper Listing 2 / Figure 2: cross-statement loop-carried dependence",
	}
}

// Listing3 illustrates §3.3: fine-grained concurrency at non-unit constant
// stride — a column-walking stencil (stride N) and an array-of-structures
// loop (stride 2 elements). Listing 4 is its transformed counterpart.
func Listing3(n int) Kernel {
	src := fmt.Sprintf(`
struct point { double x; double y; };

double A[%d][%d];
struct point B[%d];
struct point C[%d];

void main() {
  int i;
  int j;
  int N = %d;
  for (i = 0; i < N; i++) {    /* @initA */
    A[i][0] = 1.0 + 0.5 * i;
    A[i][1] = 2.0 + 0.25 * i;
    B[i].x = 0.125 * i;
    B[i].y = 1.0 - 0.125 * i;
  }
  for (i = 0; i < N; i++) {    /* @col-outer */
    for (j = 2; j < N; j++) {  /* @col-inner */
      A[i][j] = 2.0 * A[i][j-1] - A[i][j-2];  /* @S1 */
    }
  }
  for (i = 0; i < N; i++) {    /* @aos-loop */
    C[i].x = B[i].x + B[i].y;  /* @S2 */
    C[i].y = B[i].x - B[i].y;  /* @S3 */
  }
  print(A[N-1][N-1] + C[N-1].x + C[N-1].y);
}
`, n, n, n, n, n)
	return Kernel{
		Name:   "listing3",
		Source: src,
		Desc:   "paper Listing 3: stride-N column access and array-of-structures access",
	}
}

// Listing4 is Listing 3 after the paper's loop-permutation and
// structure-of-arrays layout transformations: the same computation with
// unit-stride access everywhere.
func Listing4(n int) Kernel {
	src := fmt.Sprintf(`
struct points { double x[%d]; double y[%d]; };

double A[%d][%d];
struct points B;
struct points C;

void main() {
  int i;
  int j;
  int N = %d;
  for (i = 0; i < N; i++) {    /* @initA */
    A[0][i] = 1.0 + 0.5 * i;
    A[1][i] = 2.0 + 0.25 * i;
    B.x[i] = 0.125 * i;
    B.y[i] = 1.0 - 0.125 * i;
  }
  for (j = 2; j < N; j++) {    /* @col-outer */
    for (i = 0; i < N; i++) {  /* @col-inner */
      A[j][i] = 2.0 * A[j-1][i] - A[j-2][i];  /* @S1 */
    }
  }
  for (i = 0; i < N; i++) {    /* @soa-loop */
    C.x[i] = B.x[i] + B.y[i];  /* @S2 */
    C.y[i] = B.x[i] - B.y[i];  /* @S3 */
  }
  print(A[N-1][N-1] + C.x[N-1] + C.y[N-1]);
}
`, n, n, n, n, n)
	return Kernel{
		Name:   "listing4",
		Source: src,
		Desc:   "paper Listing 4: Listing 3 after loop and data-layout transformation",
	}
}
