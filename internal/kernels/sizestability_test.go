package kernels_test

import (
	"math"
	"testing"

	"github.com/example/vectrace/internal/core"
	"github.com/example/vectrace/internal/ddg"
	"github.com/example/vectrace/internal/kernels"
	"github.com/example/vectrace/internal/pipeline"
)

// analyzeRegion runs the dynamic analysis on the marked loop's first region.
func analyzeRegion(t *testing.T, k kernels.Kernel, marker string) *core.Report {
	t.Helper()
	_, _, tr, err := pipeline.CompileAndTrace(k.Name+".c", k.Source)
	if err != nil {
		t.Fatal(err)
	}
	region, err := pipeline.LoopRegion(tr, k.LineOf(marker), 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ddg.Build(region)
	if err != nil {
		t.Fatal(err)
	}
	return core.Analyze(g, core.Options{})
}

// TestSizeStability reproduces the §4.1 claim that "although metrics such
// as average vector size can vary with problem size, the qualitative
// insights about potential vectorizability do not change": the percentage
// split between unit and non-unit potential stays essentially constant
// across problem sizes, while the average vector sizes scale.
func TestSizeStability(t *testing.T) {
	t.Run("gauss-seidel", func(t *testing.T) {
		sizes := []int{16, 24, 40}
		var unitPcts, nonUnitPcts, unitSizes []float64
		for _, n := range sizes {
			rep := analyzeRegion(t, kernels.GaussSeidel(n, 2), "@time-loop")
			unitPcts = append(unitPcts, rep.UnitVecOpsPct)
			nonUnitPcts = append(nonUnitPcts, rep.NonUnitVecOpsPct)
			unitSizes = append(unitSizes, rep.UnitAvgVecSize)
		}
		// Percentages stable within a few points.
		for i := 1; i < len(sizes); i++ {
			if math.Abs(unitPcts[i]-unitPcts[0]) > 5 {
				t.Errorf("unit%% drifted across sizes: %v", unitPcts)
			}
			if math.Abs(nonUnitPcts[i]-nonUnitPcts[0]) > 5 {
				t.Errorf("non-unit%% drifted across sizes: %v", nonUnitPcts)
			}
		}
		// Vector sizes grow with the problem (the row width).
		for i := 1; i < len(sizes); i++ {
			if unitSizes[i] <= unitSizes[i-1] {
				t.Errorf("unit vec size should grow with N: %v", unitSizes)
			}
		}
		// The qualitative verdict holds at every size: non-unit dominates.
		for i := range sizes {
			if nonUnitPcts[i] <= unitPcts[i] {
				t.Errorf("N=%d: non-unit %v should dominate unit %v", sizes[i], nonUnitPcts[i], unitPcts[i])
			}
		}
	})

	t.Run("pde-solver", func(t *testing.T) {
		for _, cfg := range []struct{ block, grid int }{{8, 3}, {12, 3}, {8, 5}} {
			rep := analyzeRegion(t, kernels.PDESolver(cfg.block, cfg.grid), "@grid-j")
			if rep.UnitVecOpsPct < 99 {
				t.Errorf("block=%d grid=%d: unit%% = %.1f, want ~100 at every size",
					cfg.block, cfg.grid, rep.UnitVecOpsPct)
			}
		}
	})

	t.Run("listing1", func(t *testing.T) {
		// The S2 insight — one partition per j of size N, fully unit — at
		// every size.
		for _, n := range []int{8, 16, 32} {
			k := kernels.Listing1(n)
			_, _, tr, err := pipeline.CompileAndTrace(k.Name+".c", k.Source)
			if err != nil {
				t.Fatal(err)
			}
			g, err := ddg.Build(tr)
			if err != nil {
				t.Fatal(err)
			}
			line := k.LineOf("@S2")
			for _, id := range g.Mod.CandidateIDs(-1) {
				if g.Mod.InstrAt(id).Pos.Line != line {
					continue
				}
				rep := core.AnalyzeInstr(g, id, core.Options{})
				if rep.Partitions != n-1 {
					t.Errorf("N=%d: partitions = %d, want %d", n, rep.Partitions, n-1)
				}
				if got := rep.Unit.AvgVecSize(); math.Abs(got-float64(n)) > 1e-9 {
					t.Errorf("N=%d: avg vec size = %v, want %d", n, got, n)
				}
			}
		}
	})
}
