package kernels_test

import (
	"math"
	"testing"

	"github.com/example/vectrace/internal/core"
	"github.com/example/vectrace/internal/ddg"
	"github.com/example/vectrace/internal/kernels"
	"github.com/example/vectrace/internal/pipeline"
	"github.com/example/vectrace/internal/staticvec"
	"github.com/example/vectrace/internal/trace"
)

// analyzeHot compiles, traces, and analyzes the @hot loop region of a
// kernel, returning the report and the execution output.
func analyzeHot(t *testing.T, k kernels.Kernel) (*core.Report, []float64) {
	t.Helper()
	mod, res, tr, err := pipeline.CompileAndTrace(k.Name+".c", k.Source)
	if err != nil {
		t.Fatalf("%s: %v", k.Name, err)
	}
	_ = mod
	region, err := pipeline.LoopRegion(tr, k.LineOf("@hot"), 0)
	if err != nil {
		t.Fatalf("%s: %v", k.Name, err)
	}
	g, err := ddg.Build(region)
	if err != nil {
		t.Fatalf("%s: DDG: %v", k.Name, err)
	}
	return core.Analyze(g, core.Options{}), res.Output
}

// hotVectorized reports whether any loop inside the kernel's @hot loop
// subtree was accepted by the static vectorizer.
func hotVectorized(t *testing.T, k kernels.Kernel) bool {
	t.Helper()
	mod, err := pipeline.Compile(k.Name+".c", k.Source)
	if err != nil {
		t.Fatalf("%s: %v", k.Name, err)
	}
	lm := mod.LoopByLine(k.LineOf("@hot"))
	if lm == nil {
		t.Fatalf("%s: no loop at @hot", k.Name)
	}
	verdicts := staticvec.AnalyzeModule(mod)
	inSubtree := map[int]bool{lm.ID: true}
	for changed := true; changed; {
		changed = false
		for i := range mod.Loops {
			l := &mod.Loops[i]
			if !inSubtree[l.ID] && l.Parent >= 0 && inSubtree[l.Parent] {
				inSubtree[l.ID] = true
				changed = true
			}
		}
	}
	for id, v := range verdicts {
		if inSubtree[id] && v.Vectorized {
			return true
		}
	}
	return false
}

// TestUTDSPFormInvariance reproduces the §4.3 result: for every kernel pair,
// the pointer-based and array-based versions produce identical outputs AND
// identical dynamic vectorization metrics — the analysis "does not make a
// distinction between data that is read from arrays or pointer
// dereferencing".
func TestUTDSPFormInvariance(t *testing.T) {
	for _, pair := range kernels.UTDSP() {
		pair := pair
		t.Run(pair.Name, func(t *testing.T) {
			ra, outA := analyzeHot(t, pair.Array)
			rp, outP := analyzeHot(t, pair.Pointer)

			if len(outA) != len(outP) {
				t.Fatalf("output lengths differ: %d vs %d", len(outA), len(outP))
			}
			for i := range outA {
				if math.Abs(outA[i]-outP[i]) > 1e-12*(1+math.Abs(outA[i])) {
					t.Fatalf("output %d differs: %v vs %v", i, outA[i], outP[i])
				}
			}

			if ra.TotalCandidateOps != rp.TotalCandidateOps {
				t.Fatalf("candidate ops differ: %d vs %d", ra.TotalCandidateOps, rp.TotalCandidateOps)
			}
			near := func(name string, a, b float64) {
				if math.Abs(a-b) > 1e-9 {
					t.Fatalf("%s differs: array=%v pointer=%v", name, a, b)
				}
			}
			near("avg concurrency", ra.AvgConcurrency, rp.AvgConcurrency)
			near("unit vec ops %", ra.UnitVecOpsPct, rp.UnitVecOpsPct)
			near("unit avg vec size", ra.UnitAvgVecSize, rp.UnitAvgVecSize)
			near("non-unit vec ops %", ra.NonUnitVecOpsPct, rp.NonUnitVecOpsPct)
			near("non-unit avg vec size", ra.NonUnitAvgVecSize, rp.NonUnitAvgVecSize)
		})
	}
}

// TestUTDSPCompilerAsymmetry reproduces Table 3's "Percent Packed" contrast:
// the static vectorizer accepts some array-form kernels but never the
// pointer forms.
func TestUTDSPCompilerAsymmetry(t *testing.T) {
	wantArrayVectorized := map[string]bool{
		"FIR":    true,  // reduction-vectorized MAC loop
		"FFT":    true,  // butterflies with runtime disambiguation
		"IIR":    false, // delay-line recurrence
		"LATNRM": false, // stage recurrence
		"LMSFIR": false, // descending-stride delay-line walk
		"MULT":   true,  // ikj unit-stride inner loop
	}
	for _, pair := range kernels.UTDSP() {
		pair := pair
		t.Run(pair.Name, func(t *testing.T) {
			gotArr := hotVectorized(t, pair.Array)
			if want := wantArrayVectorized[pair.Name]; gotArr != want {
				t.Errorf("array form vectorized = %v, want %v", gotArr, want)
			}
			if hotVectorized(t, pair.Pointer) {
				t.Errorf("pointer form vectorized; icc-like conservatism should reject it")
			}
		})
	}
}

// TestUTDSPRegionsExist sanity-checks every kernel's @hot loop runs exactly
// once.
func TestUTDSPRegionsExist(t *testing.T) {
	for _, pair := range kernels.UTDSP() {
		for _, k := range []kernels.Kernel{pair.Array, pair.Pointer} {
			mod, _, tr, err := pipeline.CompileAndTrace(k.Name+".c", k.Source)
			if err != nil {
				t.Fatalf("%s: %v", k.Name, err)
			}
			lm := mod.LoopByLine(k.LineOf("@hot"))
			if lm == nil {
				t.Fatalf("%s: missing @hot loop", k.Name)
			}
			// The FFT butterfly loop runs once per stage; the others run
			// exactly once.
			regions := tr.Regions(lm.ID)
			if len(regions) < 1 {
				t.Fatalf("%s: @hot loop has no dynamic regions", k.Name)
			}
			if pair.Name != "FFT" && len(regions) != 1 {
				t.Fatalf("%s: @hot loop has %d regions, want 1", k.Name, len(regions))
			}
			var _ trace.Region = regions[0]
		}
	}
}
