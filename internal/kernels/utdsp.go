package kernels

import "fmt"

// Pair bundles the array-based and pointer-based versions of one UTDSP
// kernel (§4.3, Table 3). Both versions compute identical outputs; the
// dynamic analysis must produce identical metrics for both (it sees only
// IR-level operations and addresses), while the static vectorizer — like
// icc — rejects the pointer form for unprovable aliasing.
type Pair struct {
	Name    string
	Array   Kernel
	Pointer Kernel
}

// UTDSP returns all six kernel pairs of Table 3, sized for analysis runs.
func UTDSP() []Pair {
	return []Pair{
		FIRPair(64, 16),
		FFTPair(64),
		IIRPair(256),
		LATNRMPair(64, 8),
		LMSFIRPair(64, 16),
		MULTPair(16),
	}
}

// FIRPair is a direct-form FIR filter: y[i] = Σj c[j]·x[i+j]. The inner sum
// is a vectorizable reduction in the array form.
func FIRPair(n, taps int) Pair {
	array := Kernel{Name: "fir-array", Desc: "UTDSP FIR, array form", Source: fmt.Sprintf(`
double x[%d];
double c[%d];
double y[%d];

void main() {
  int i;
  int j;
  int N = %d;
  int T = %d;
  for (i = 0; i < N + T; i++) {   /* @init */
    x[i] = 0.02 * i - 0.5;
  }
  for (j = 0; j < T; j++) {
    c[j] = 1.0 / (1.0 + j);
  }
  for (i = 0; i < N; i++) {       /* @hot */
    double s = 0.0;
    for (j = 0; j < T; j++) {     /* @inner */
      s = s + c[j] * x[i + j];    /* @mac */
    }
    y[i] = s;
  }
  print(y[0]);
  print(y[N/2]);
  print(y[N-1]);
}
`, n+taps, taps, n, n, taps)}
	pointer := Kernel{Name: "fir-pointer", Desc: "UTDSP FIR, pointer form", Source: fmt.Sprintf(`
double x[%d];
double c[%d];
double y[%d];

void main() {
  int i;
  int j;
  int N = %d;
  int T = %d;
  double *px;
  double *pc;
  double *py;
  px = x;
  for (i = 0; i < N + T; i++) {   /* @init */
    *px = 0.02 * i - 0.5;
    px = px + 1;
  }
  pc = c;
  for (j = 0; j < T; j++) {
    *pc = 1.0 / (1.0 + j);
    pc = pc + 1;
  }
  py = y;
  for (i = 0; i < N; i++) {       /* @hot */
    double s = 0.0;
    pc = c;
    px = x + i;
    for (j = 0; j < T; j++) {     /* @inner */
      s = s + *pc * *px;          /* @mac */
      pc = pc + 1;
      px = px + 1;
    }
    *py = s;
    py = py + 1;
  }
  print(y[0]);
  print(y[N/2]);
  print(y[N-1]);
}
`, n+taps, taps, n, n, taps)}
	return Pair{Name: "FIR", Array: array, Pointer: pointer}
}

// FFTPair is one radix-2 decimation-in-time pass structure with ping-pong
// buffers: each stage combines pairs of elements from the input buffer into
// the output buffer, then the buffers swap roles. (The UTDSP kernel computes
// a full FFT; the reproduction keeps the butterfly access pattern, which is
// what the analysis characterizes.)
func FFTPair(n int) Pair {
	array := Kernel{Name: "fft-array", Desc: "UTDSP FFT butterflies, array form", Source: fmt.Sprintf(`
double re_a[%d];
double im_a[%d];
double re_b[%d];
double im_b[%d];
double wr[%d];
double wi[%d];

void main() {
  int i;
  int half;
  int N = %d;
  for (i = 0; i < N; i++) {        /* @init */
    re_a[i] = sin(0.1 * i);
    im_a[i] = cos(0.1 * i);
    wr[i] = cos(0.3 * i);
    wi[i] = sin(0.3 * i);
  }
  half = N / 2;
  while (half >= 1) {              /* @stages */
    for (i = 0; i < half; i++) {   /* @hot */
      double tr = wr[i] * re_a[i + half] - wi[i] * im_a[i + half];  /* @tw */
      double ti = wr[i] * im_a[i + half] + wi[i] * re_a[i + half];
      re_b[i] = re_a[i] + tr;      /* @bf */
      im_b[i] = im_a[i] + ti;
      re_b[i + half] = re_a[i] - tr;
      im_b[i + half] = im_a[i] - ti;
    }
    for (i = 0; i < 2 * half; i++) { /* @copyback */
      re_a[i] = re_b[i];
      im_a[i] = im_b[i];
    }
    half = half / 2;
  }
  print(re_a[0]);
  print(im_a[0]);
}
`, n, n, n, n, n, n, n)}
	pointer := Kernel{Name: "fft-pointer", Desc: "UTDSP FFT butterflies, pointer form", Source: fmt.Sprintf(`
double re_a[%d];
double im_a[%d];
double re_b[%d];
double im_b[%d];
double wr[%d];
double wi[%d];

void main() {
  int i;
  int half;
  int N = %d;
  for (i = 0; i < N; i++) {        /* @init */
    re_a[i] = sin(0.1 * i);
    im_a[i] = cos(0.1 * i);
    wr[i] = cos(0.3 * i);
    wi[i] = sin(0.3 * i);
  }
  half = N / 2;
  while (half >= 1) {              /* @stages */
    double *pra = re_a;
    double *pia = im_a;
    double *prah = re_a + half;
    double *piah = im_a + half;
    double *prb = re_b;
    double *pib = im_b;
    double *prbh = re_b + half;
    double *pibh = im_b + half;
    double *pwr = wr;
    double *pwi = wi;
    for (i = 0; i < half; i++) {   /* @hot */
      double tr = *pwr * *prah - *pwi * *piah;   /* @tw */
      double ti = *pwr * *piah + *pwi * *prah;
      *prb = *pra + tr;            /* @bf */
      *pib = *pia + ti;
      *prbh = *pra - tr;
      *pibh = *pia - ti;
      pra = pra + 1; pia = pia + 1; prah = prah + 1; piah = piah + 1;
      prb = prb + 1; pib = pib + 1; prbh = prbh + 1; pibh = pibh + 1;
      pwr = pwr + 1; pwi = pwi + 1;
    }
    pra = re_a;
    pia = im_a;
    prb = re_b;
    pib = im_b;
    for (i = 0; i < 2 * half; i++) { /* @copyback */
      *pra = *prb;
      *pia = *pib;
      pra = pra + 1; pia = pia + 1; prb = prb + 1; pib = pib + 1;
    }
    half = half / 2;
  }
  print(re_a[0]);
  print(im_a[0]);
}
`, n, n, n, n, n, n, n)}
	return Pair{Name: "FFT", Array: array, Pointer: pointer}
}

// IIRPair is a direct-form-II biquad IIR filter: the recurrence through the
// delay line serializes the sample loop; per-sample arithmetic retains some
// fine-grained concurrency.
func IIRPair(n int) Pair {
	array := Kernel{Name: "iir-array", Desc: "UTDSP IIR biquad, array form", Source: fmt.Sprintf(`
double x[%d];
double y[%d];

void main() {
  int i;
  int N = %d;
  double b0 = 0.2;
  double b1 = 0.35;
  double b2 = 0.2;
  double a1 = -0.4;
  double a2 = 0.15;
  double w1 = 0.0;
  double w2 = 0.0;
  for (i = 0; i < N; i++) {   /* @init */
    x[i] = sin(0.05 * i) + 0.3 * cos(0.21 * i);
  }
  for (i = 0; i < N; i++) {   /* @hot */
    double w = x[i] - a1 * w1 - a2 * w2;   /* @w */
    y[i] = b0 * w + b1 * w1 + b2 * w2;     /* @y */
    w2 = w1;
    w1 = w;
  }
  print(y[0]);
  print(y[N/2]);
  print(y[N-1]);
}
`, n, n, n)}
	pointer := Kernel{Name: "iir-pointer", Desc: "UTDSP IIR biquad, pointer form", Source: fmt.Sprintf(`
double x[%d];
double y[%d];

void main() {
  int i;
  int N = %d;
  double b0 = 0.2;
  double b1 = 0.35;
  double b2 = 0.2;
  double a1 = -0.4;
  double a2 = 0.15;
  double w1 = 0.0;
  double w2 = 0.0;
  double *px;
  double *py;
  px = x;
  for (i = 0; i < N; i++) {   /* @init */
    *px = sin(0.05 * i) + 0.3 * cos(0.21 * i);
    px = px + 1;
  }
  px = x;
  py = y;
  for (i = 0; i < N; i++) {   /* @hot */
    double w = *px - a1 * w1 - a2 * w2;    /* @w */
    *py = b0 * w + b1 * w1 + b2 * w2;      /* @y */
    w2 = w1;
    w1 = w;
    px = px + 1;
    py = py + 1;
  }
  print(y[0]);
  print(y[N/2]);
  print(y[N-1]);
}
`, n, n, n)}
	return Pair{Name: "IIR", Array: array, Pointer: pointer}
}

// LATNRMPair is a normalized lattice filter: per-sample stage recurrences
// with normalization multiplies.
func LATNRMPair(n, order int) Pair {
	array := Kernel{Name: "latnrm-array", Desc: "UTDSP LATNRM lattice filter, array form", Source: fmt.Sprintf(`
double x[%d];
double y[%d];
double k1[%d];
double k2[%d];
double d[%d];

void main() {
  int i;
  int j;
  int N = %d;
  int ORDER = %d;
  for (i = 0; i < N; i++) {     /* @initx */
    x[i] = sin(0.07 * i);
  }
  for (j = 0; j < ORDER; j++) {
    k1[j] = 0.5 / (1.0 + j);
    k2[j] = 0.25 / (1.0 + j);
    d[j] = 0.0;
  }
  for (i = 0; i < N; i++) {     /* @hot */
    double top = x[i];
    for (j = 0; j < ORDER; j++) {   /* @stage */
      double left = top - k1[j] * d[j];    /* @left */
      double down = d[j] + k2[j] * left;   /* @down */
      d[j] = down;
      top = left * k2[j];                  /* @norm */
    }
    y[i] = top;
  }
  print(y[0]);
  print(y[N/2]);
  print(y[N-1]);
}
`, n, n, order, order, order, n, order)}
	pointer := Kernel{Name: "latnrm-pointer", Desc: "UTDSP LATNRM lattice filter, pointer form", Source: fmt.Sprintf(`
double x[%d];
double y[%d];
double k1[%d];
double k2[%d];
double d[%d];

void main() {
  int i;
  int j;
  int N = %d;
  int ORDER = %d;
  double *px;
  for (i = 0; i < N; i++) {     /* @initx */
    x[i] = sin(0.07 * i);
  }
  for (j = 0; j < ORDER; j++) {
    k1[j] = 0.5 / (1.0 + j);
    k2[j] = 0.25 / (1.0 + j);
    d[j] = 0.0;
  }
  px = x;
  for (i = 0; i < N; i++) {     /* @hot */
    double top = *px;
    double *pk1 = k1;
    double *pk2 = k2;
    double *pd = d;
    for (j = 0; j < ORDER; j++) {   /* @stage */
      double left = top - *pk1 * *pd;    /* @left */
      double down = *pd + *pk2 * left;   /* @down */
      *pd = down;
      top = left * *pk2;                 /* @norm */
      pk1 = pk1 + 1;
      pk2 = pk2 + 1;
      pd = pd + 1;
    }
    y[i] = top;
    px = px + 1;
  }
  print(y[0]);
  print(y[N/2]);
  print(y[N-1]);
}
`, n, n, order, order, order, n, order)}
	return Pair{Name: "LATNRM", Array: array, Pointer: pointer}
}

// LMSFIRPair is an LMS adaptive FIR: a delay-line convolution written
// backwards (descending stride, the UTDSP idiom) followed by a coefficient
// update — both defeat the static vectorizer, while the dynamic analysis
// still finds cross-sample concurrency.
func LMSFIRPair(n, taps int) Pair {
	array := Kernel{Name: "lmsfir-array", Desc: "UTDSP LMSFIR adaptive filter, array form", Source: fmt.Sprintf(`
double x[%d];
double dref[%d];
double c[%d];
double y[%d];

void main() {
  int i;
  int j;
  int N = %d;
  int T = %d;
  double mu = 0.002;
  for (i = 0; i < N + T; i++) {   /* @init */
    x[i] = sin(0.03 * i) + 0.2;
    dref[i] = 0.8 * sin(0.03 * i + 0.1);
  }
  for (j = 0; j < T; j++) {
    c[j] = 0.0;
  }
  for (i = 0; i < N; i++) {       /* @hot */
    double s = 0.0;
    for (j = 0; j < T; j++) {     /* @conv */
      s = s + c[j] * x[i + T - 1 - j];   /* @mac */
    }
    y[i] = s;
    double e = dref[i] - s;
    for (j = 0; j < T; j++) {     /* @update */
      c[j] = c[j] + mu * e * x[i + T - 1 - j];  /* @upd */
    }
  }
  print(y[N-1]);
  print(c[0]);
  print(c[T-1]);
}
`, n+taps, n+taps, taps, n, n, taps)}
	pointer := Kernel{Name: "lmsfir-pointer", Desc: "UTDSP LMSFIR adaptive filter, pointer form", Source: fmt.Sprintf(`
double x[%d];
double dref[%d];
double c[%d];
double y[%d];

void main() {
  int i;
  int j;
  int N = %d;
  int T = %d;
  double mu = 0.002;
  for (i = 0; i < N + T; i++) {   /* @init */
    x[i] = sin(0.03 * i) + 0.2;
    dref[i] = 0.8 * sin(0.03 * i + 0.1);
  }
  for (j = 0; j < T; j++) {
    c[j] = 0.0;
  }
  for (i = 0; i < N; i++) {       /* @hot */
    double s = 0.0;
    double *pc = c;
    double *px = x + i + T - 1;
    for (j = 0; j < T; j++) {     /* @conv */
      s = s + *pc * *px;          /* @mac */
      pc = pc + 1;
      px = px - 1;
    }
    y[i] = s;
    double e = dref[i] - s;
    pc = c;
    px = x + i + T - 1;
    for (j = 0; j < T; j++) {     /* @update */
      *pc = *pc + mu * e * *px;   /* @upd */
      pc = pc + 1;
      px = px - 1;
    }
  }
  print(y[N-1]);
  print(c[0]);
  print(c[T-1]);
}
`, n+taps, n+taps, taps, n, n, taps)}
	return Pair{Name: "LMSFIR", Array: array, Pointer: pointer}
}

// MULTPair is a dense matrix multiply in the ikj order, whose innermost
// loop streams B's and C's rows with unit stride: icc vectorizes the array
// form (the paper reports ~50% packed) but not the pointer form.
func MULTPair(n int) Pair {
	array := Kernel{Name: "mult-array", Desc: "UTDSP MULT matrix multiply, array form", Source: fmt.Sprintf(`
double A[%d][%d];
double B[%d][%d];
double C[%d][%d];

void main() {
  int i;
  int j;
  int k;
  int N = %d;
  for (i = 0; i < N; i++) {      /* @init */
    for (j = 0; j < N; j++) {
      A[i][j] = 0.01 * (i + j) + 0.001 * i;
      B[i][j] = 0.02 * (i - j) + 1.0;
      C[i][j] = 0.0;
    }
  }
  for (i = 0; i < N; i++) {      /* @hot */
    for (k = 0; k < N; k++) {    /* @mid */
      for (j = 0; j < N; j++) {  /* @inner */
        C[i][j] = C[i][j] + A[i][k] * B[k][j];   /* @mac */
      }
    }
  }
  print(C[0][0]);
  print(C[N/2][N/2]);
  print(C[N-1][N-1]);
}
`, n, n, n, n, n, n, n)}
	pointer := Kernel{Name: "mult-pointer", Desc: "UTDSP MULT matrix multiply, pointer form", Source: fmt.Sprintf(`
double A[%d][%d];
double B[%d][%d];
double C[%d][%d];

void main() {
  int i;
  int j;
  int k;
  int N = %d;
  for (i = 0; i < N; i++) {      /* @init */
    for (j = 0; j < N; j++) {
      A[i][j] = 0.01 * (i + j) + 0.001 * i;
      B[i][j] = 0.02 * (i - j) + 1.0;
      C[i][j] = 0.0;
    }
  }
  for (i = 0; i < N; i++) {      /* @hot */
    for (k = 0; k < N; k++) {    /* @mid */
      double a = A[i][k];
      double *pb = B[k];
      double *pcc = C[i];
      for (j = 0; j < N; j++) {  /* @inner */
        *pcc = *pcc + a * *pb;   /* @mac */
        pb = pb + 1;
        pcc = pcc + 1;
      }
    }
  }
  print(C[0][0]);
  print(C[N/2][N/2]);
  print(C[N-1][N-1]);
}
`, n, n, n, n, n, n, n)}
	return Pair{Name: "MULT", Array: array, Pointer: pointer}
}
