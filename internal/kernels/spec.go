package kernels

import "fmt"

// SpecTarget names one analyzed hot loop of a SPEC-shaped kernel, keyed by
// the paper's "file : line" label and located by a source marker.
type SpecTarget struct {
	// Label is the paper's Table 1 row key, e.g. "quark_stuff.c : 1452".
	Label string
	// Marker locates the loop in the kernel source.
	Marker string
}

// SpecBenchmark is one SPEC CFP2006 benchmark modeled by a MiniC kernel
// that reproduces the dependence structure, data layout, and control flow
// of the paper's analyzed hot loops.
type SpecBenchmark struct {
	Name    string
	Kernel  Kernel
	Targets []SpecTarget
}

// SPEC returns the Table 1 benchmark suite. Every SPEC CFP2006 benchmark
// the paper analyzed is represented (gamess is absent in the paper itself —
// it did not compile under LLVM). Benchmarks with several distinct hot-loop
// shapes contribute multiple kernels (see spec2.go), mirroring the paper's
// multi-row entries.
func SPEC() []SpecBenchmark {
	base := []SpecBenchmark{
		specBwaves(),
		specMilc(),
		specZeusmp(),
		specGromacs(),
		specCactusADM(),
		specLeslie3d(),
		specNamd(),
		specDealII(),
		specSoplex(),
		specPovray(),
		specCalculix(),
		specGemsFDTD(),
		specTonto(),
		specLbm(),
		specWrf(),
		specSphinx3(),
	}
	return append(base, specExtra()...)
}

// specBwaves models the block_solver.f loops: 5×5 block matrix–vector
// products over a grid, with a reduction inner loop.
func specBwaves() SpecBenchmark {
	const cells = 512
	k := Kernel{Name: "410.bwaves", Desc: "block tridiagonal solver mat-vec blocks", Source: fmt.Sprintf(`
double A[%d][5][5];
double x[%d][5];
double y[%d][5];

void main() {
  int c;
  int mi;
  int mj;
  int C = %d;
  for (c = 0; c < C; c++) {        /* @init */
    for (mi = 0; mi < 5; mi++) {
      for (mj = 0; mj < 5; mj++) {
        A[c][mi][mj] = 0.01 * mi - 0.02 * mj + 0.0001 * c + 1.0;
      }
      x[c][mi] = 0.5 + 0.03 * mi + 0.0002 * c;
    }
  }
  for (c = 0; c < C; c++) {        /* @hot */
    for (mi = 0; mi < 5; mi++) {
      double s = 0.0;
      for (mj = 0; mj < 5; mj++) { /* @mac-loop */
        s = s + A[c][mi][mj] * x[c][mj];   /* @mac */
      }
      y[c][mi] = s;
    }
  }
  print(y[0][0]);
  print(y[%d][4]);
}
`, cells, cells, cells, cells, cells-1)}
	return SpecBenchmark{Name: "410.bwaves", Kernel: k, Targets: []SpecTarget{
		{Label: "block_solver.f : 55", Marker: "@hot"},
	}}
}

// specMilc reuses the case-study original: AoS su3 matrix–vector products.
func specMilc() SpecBenchmark {
	cs := Milc(384)
	return SpecBenchmark{Name: "433.milc", Kernel: cs.Original, Targets: []SpecTarget{
		{Label: "quark_stuff.c : 1452", Marker: "@hot"},
	}}
}

// specZeusmp models the advx3.f advection stencil: an upwind difference in
// the sweep direction, writing a distinct output array.
func specZeusmp() SpecBenchmark {
	const n = 24
	k := Kernel{Name: "434.zeusmp", Desc: "advection sweep stencil", Source: fmt.Sprintf(`
double v[%d][%d][%d];
double u[%d][%d][%d];
double dq[%d][%d][%d];

void main() {
  int i;
  int j;
  int kk;
  int N = %d;
  for (kk = 0; kk < N; kk++) {      /* @init */
    for (j = 0; j < N; j++) {
      for (i = 0; i < N; i++) {
        v[kk][j][i] = 0.3 + 0.001 * (i + j + kk);
        u[kk][j][i] = 0.1 + 0.002 * (i - j) + 0.0005 * kk;
      }
    }
  }
  for (kk = 0; kk < N; kk++) {      /* @hot */
    for (j = 0; j < N; j++) {
      for (i = 1; i < N; i++) {     /* @sweep */
        dq[kk][j][i] = 0.5 * (v[kk][j][i] - v[kk][j][i-1]) +
                       0.25 * u[kk][j][i];   /* @S */
      }
    }
  }
  print(dq[0][0][1]);
  print(dq[%d][%d][%d]);
}
`, n, n, n, n, n, n, n, n, n, n, n-1, n-1, n-1)}
	return SpecBenchmark{Name: "434.zeusmp", Kernel: k, Targets: []SpecTarget{
		{Label: "advx3.f : 637", Marker: "@hot"},
	}}
}

// specGromacs reuses the case-study original: the indirected force loop.
func specGromacs() SpecBenchmark {
	// 256 is a multiple of the strip-mine width, so the constructor cannot
	// fail here.
	cs, _ := Gromacs(256, 1024)
	return SpecBenchmark{Name: "435.gromacs", Kernel: cs.Original, Targets: []SpecTarget{
		{Label: "innerf.f : 3960", Marker: "@hot"},
	}}
}

// specCactusADM models the StaggeredLeapfrog2 update: a pure streaming
// leapfrog stencil writing separate past/future arrays — the paper's
// highest-concurrency fully packed loops.
func specCactusADM() SpecBenchmark {
	const n = 20
	k := Kernel{Name: "436.cactusADM", Desc: "staggered leapfrog update", Source: fmt.Sprintf(`
double g_p[%d][%d][%d];
double g[%d][%d][%d];
double g_n[%d][%d][%d];
double kcur[%d][%d][%d];

void main() {
  int i;
  int j;
  int kk;
  int N = %d;
  double dt = 0.01;
  for (kk = 0; kk < N; kk++) {      /* @init */
    for (j = 0; j < N; j++) {
      for (i = 0; i < N; i++) {
        g_p[kk][j][i] = 1.0 + 0.001 * (i + j + kk);
        g[kk][j][i] = 1.0 + 0.0011 * (i + j) - 0.0002 * kk;
        kcur[kk][j][i] = 0.05 * (i - j) + 0.003 * kk;
      }
    }
  }
  for (kk = 1; kk < N - 1; kk++) {  /* @hot */
    for (j = 1; j < N - 1; j++) {
      for (i = 1; i < N - 1; i++) { /* @leap */
        g_n[kk][j][i] = g_p[kk][j][i] - 2.0 * dt * g[kk][j][i] * kcur[kk][j][i];  /* @S */
      }
    }
  }
  print(g_n[1][1][1]);
  print(g_n[%d][%d][%d]);
}
`, n, n, n, n, n, n, n, n, n, n, n, n, n, n-2, n-2, n-2)}
	return SpecBenchmark{Name: "436.cactusADM", Kernel: k, Targets: []SpecTarget{
		{Label: "StaggeredLeapfrog2.F : 342", Marker: "@hot"},
	}}
}

// specLeslie3d models the tml.f flux-difference loops: forward differences
// of an input field into distinct flux arrays.
func specLeslie3d() SpecBenchmark {
	const n = 22
	k := Kernel{Name: "437.leslie3d", Desc: "flux differences", Source: fmt.Sprintf(`
double q[%d][%d][%d];
double fx[%d][%d][%d];

void main() {
  int i;
  int j;
  int kk;
  int N = %d;
  for (kk = 0; kk < N; kk++) {      /* @init */
    for (j = 0; j < N; j++) {
      for (i = 0; i < N; i++) {
        q[kk][j][i] = 2.0 + 0.01 * i + 0.002 * j - 0.001 * kk;
      }
    }
  }
  for (kk = 0; kk < N; kk++) {      /* @hot */
    for (j = 0; j < N; j++) {
      for (i = 0; i < N - 1; i++) { /* @flux */
        fx[kk][j][i] = 0.5 * (q[kk][j][i+1] - q[kk][j][i]) +
                       0.125 * (q[kk][j][i+1] + q[kk][j][i]);  /* @S */
      }
    }
  }
  print(fx[0][0][0]);
  print(fx[%d][%d][%d]);
}
`, n, n, n, n, n, n, n, n-1, n-1, n-2)}
	return SpecBenchmark{Name: "437.leslie3d", Kernel: k, Targets: []SpecTarget{
		{Label: "tml.f : 522", Marker: "@hot"},
	}}
}

// specNamd models the nonbonded pair loop: indirection through a pair list
// plus a cutoff branch — no static vectorization, but abundant fine-grained
// concurrency in the per-pair vector arithmetic.
func specNamd() SpecBenchmark {
	const atoms, pairs = 512, 2048
	k := Kernel{Name: "444.namd", Desc: "nonbonded pair interactions", Source: fmt.Sprintf(`
int pl1[%d];
int pl2[%d];
double px[%d];
double py[%d];
double pz[%d];
double fx[%d];
double energy;

void main() {
  int p;
  int i;
  int P = %d;
  int A = %d;
  double cutoff = 2.5;
  double e = 0.0;
  for (i = 0; i < A; i++) {     /* @init-atoms */
    px[i] = sin(0.1 * i) * 3.0;
    py[i] = cos(0.13 * i) * 3.0;
    pz[i] = sin(0.07 * i + 0.5) * 3.0;
    fx[i] = 0.0;
  }
  for (p = 0; p < P; p++) {     /* @init-pairs */
    pl1[p] = (p * 13) %% A;
    pl2[p] = (p * 29 + 7) %% A;
  }
  for (p = 0; p < P; p++) {     /* @hot */
    int i1 = pl1[p];
    int i2 = pl2[p];
    double dx = px[i1] - px[i2];    /* @dx */
    double dy = py[i1] - py[i2];
    double dz = pz[i1] - pz[i2];
    double r2 = dx * dx + dy * dy + dz * dz;   /* @r2 */
    if (r2 < cutoff && r2 > 0.0001) {
      double rinv = 1.0 / sqrt(r2);
      e = e + rinv * 0.5;
      fx[i1] = fx[i1] + dx * rinv;
    }
  }
  energy = e;
  print(e);
  print(fx[0]);
}
`, pairs, pairs, atoms, atoms, atoms, atoms, pairs, atoms)}
	return SpecBenchmark{Name: "444.namd", Kernel: k, Targets: []SpecTarget{
		{Label: "ComputeNonbondedBase.h : 321", Marker: "@hot"},
	}}
}

// specDealII models finite-element cell assembly: dense shape-function
// products accumulated into a global matrix through indirect DOF indices.
func specDealII() SpecBenchmark {
	const cells, dofs, quad, ndof = 64, 8, 4, 256
	k := Kernel{Name: "447.dealII", Desc: "FE cell assembly with DOF indirection", Source: fmt.Sprintf(`
double shape[%d][%d];
double jxw[%d];
int dofmap[%d][%d];
double gmat[%d][%d];

void main() {
  int c;
  int q;
  int i;
  int j;
  int CELLS = %d;
  int DOFS = %d;
  int QUAD = %d;
  int NDOF = %d;
  for (q = 0; q < QUAD; q++) {     /* @init-shape */
    jxw[q] = 0.25 + 0.01 * q;
    for (i = 0; i < DOFS; i++) {
      shape[q][i] = sin(0.3 * q + 0.5 * i) + 1.1;
    }
  }
  for (c = 0; c < CELLS; c++) {    /* @init-dofmap */
    for (i = 0; i < DOFS; i++) {
      dofmap[c][i] = (c * 3 + i * 17) %% NDOF;
    }
  }
  for (c = 0; c < CELLS; c++) {    /* @hot */
    for (q = 0; q < QUAD; q++) {
      for (i = 0; i < DOFS; i++) {
        for (j = 0; j < DOFS; j++) {   /* @asm */
          gmat[dofmap[c][i]][dofmap[c][j]] =
              gmat[dofmap[c][i]][dofmap[c][j]] +
              shape[q][i] * shape[q][j] * jxw[q];   /* @S */
        }
      }
    }
  }
  print(gmat[0][0]);
  print(gmat[%d][%d]);
}
`, quad, dofs, quad, cells, dofs, ndof, ndof, cells, dofs, quad, ndof, ndof/2, ndof/3)}
	return SpecBenchmark{Name: "447.dealII", Kernel: k, Targets: []SpecTarget{
		{Label: "step-14.cc : 715", Marker: "@hot"},
	}}
}

// specSoplex models sparse vector updates through an index array.
func specSoplex() SpecBenchmark {
	const dim, nnz = 512, 1536
	k := Kernel{Name: "450.soplex", Desc: "sparse vector saxpy through index array", Source: fmt.Sprintf(`
int idx[%d];
double mat[%d];
double val[%d];

void main() {
  int n;
  int i;
  int NNZ = %d;
  int DIM = %d;
  double x = 1.5;
  for (i = 0; i < DIM; i++) {   /* @init-val */
    val[i] = 0.1 * i;
  }
  for (n = 0; n < NNZ; n++) {   /* @init-nz */
    idx[n] = (n * 11) %% DIM;
    mat[n] = 0.01 * n - 2.0;
  }
  for (n = 0; n < NNZ; n++) {   /* @hot */
    val[idx[n]] = val[idx[n]] + x * mat[n];   /* @S */
  }
  print(val[0]);
  print(val[%d]);
}
`, nnz, nnz, dim, nnz, dim, dim-1)}
	return SpecBenchmark{Name: "450.soplex", Kernel: k, Targets: []SpecTarget{
		{Label: "ssvector.cc : 983", Marker: "@hot"},
	}}
}

// specPovray models the bounding-box worklist: a data-dependent outer loop
// whose per-box intersection arithmetic (3-vector dot products) repeats with
// high concurrency but irregular control flow.
func specPovray() SpecBenchmark {
	const boxes = 512
	k := Kernel{Name: "453.povray", Desc: "bbox intersection worklist", Source: fmt.Sprintf(`
double bmin[%d][3];
double bmax[%d][3];
double hits;

void main() {
  int b;
  int a;
  int B = %d;
  double ox = 0.1;
  double oy = 0.2;
  double oz = 0.3;
  double dx = 0.57;
  double dy = 0.57;
  double dz = 0.59;
  double h = 0.0;
  for (b = 0; b < B; b++) {       /* @init */
    for (a = 0; a < 3; a++) {
      bmin[b][a] = sin(0.2 * b + a);
      bmax[b][a] = bmin[b][a] + 1.0 + 0.5 * cos(0.1 * b);
    }
  }
  for (b = 0; b < B; b++) {       /* @hot */
    double t1 = (bmin[b][0] - ox) * dx + (bmin[b][1] - oy) * dy +
                (bmin[b][2] - oz) * dz;    /* @t1 */
    double t2 = (bmax[b][0] - ox) * dx + (bmax[b][1] - oy) * dy +
                (bmax[b][2] - oz) * dz;    /* @t2 */
    if (t1 < t2 && t1 > 0.0) {
      h = h + t2 - t1;
      if (h > 1000.0) {
        h = h * 0.5;
      }
    }
  }
  hits = h;
  print(h);
}
`, boxes, boxes, boxes)}
	return SpecBenchmark{Name: "453.povray", Kernel: k, Targets: []SpecTarget{
		{Label: "bbox.cpp : 894", Marker: "@hot"},
	}}
}

// specCalculix models two loops: the e_c3d.f dense element computation
// (vectorizable streaming) and the Utilities DV.c dot-product reduction —
// the paper's example of Percent Packed exceeding Percent Vec. Ops.
func specCalculix() SpecBenchmark {
	const elems, n = 128, 4096
	k := Kernel{Name: "454.calculix", Desc: "element stiffness + DV dot-product reduction", Source: fmt.Sprintf(`
double w[%d][8];
double sk[%d][8];
double v1[%d];
double v2[%d];
double dot;

void main() {
  int e;
  int i;
  int E = %d;
  int N = %d;
  for (e = 0; e < E; e++) {     /* @init-elem */
    for (i = 0; i < 8; i++) {
      w[e][i] = 0.02 * i + 0.001 * e + 0.3;
    }
  }
  for (i = 0; i < N; i++) {     /* @init-vec */
    v1[i] = sin(0.01 * i);
    v2[i] = cos(0.015 * i);
  }
  for (e = 0; e < E; e++) {     /* @hot-ec3d */
    for (i = 0; i < 8; i++) {   /* @stiff */
      sk[e][i] = w[e][i] * w[e][i] * 2.5 + 0.125 * w[e][i];   /* @S */
    }
  }
  double s = 0.0;
  for (i = 0; i < N; i++) {     /* @hot-dv */
    s = s + v1[i] * v2[i];      /* @red */
  }
  dot = s;
  print(sk[0][0]);
  print(s);
}
`, elems, elems, n, n, elems, n)}
	return SpecBenchmark{Name: "454.calculix", Kernel: k, Targets: []SpecTarget{
		{Label: "e_c3d.f : 675", Marker: "@hot-ec3d"},
		{Label: "Utilities DV.c : 1241", Marker: "@hot-dv"},
	}}
}

// specGemsFDTD models the H-field update loops: streaming curl stencils
// over separate field arrays.
func specGemsFDTD() SpecBenchmark {
	const n = 22
	k := Kernel{Name: "459.GemsFDTD", Desc: "FDTD H-field update", Source: fmt.Sprintf(`
double hx[%d][%d][%d];
double ey[%d][%d][%d];
double ez[%d][%d][%d];

void main() {
  int i;
  int j;
  int kk;
  int N = %d;
  for (kk = 0; kk < N; kk++) {      /* @init */
    for (j = 0; j < N; j++) {
      for (i = 0; i < N; i++) {
        ey[kk][j][i] = 0.01 * (i + 2 * j) - 0.002 * kk;
        ez[kk][j][i] = 0.015 * (i - j) + 0.001 * kk;
        hx[kk][j][i] = 0.0;
      }
    }
  }
  for (kk = 0; kk < N - 1; kk++) {  /* @hot */
    for (j = 0; j < N - 1; j++) {
      for (i = 0; i < N; i++) {     /* @update */
        hx[kk][j][i] = hx[kk][j][i] +
            0.5 * (ey[kk+1][j][i] - ey[kk][j][i]) -
            0.5 * (ez[kk][j+1][i] - ez[kk][j][i]);   /* @S */
      }
    }
  }
  print(hx[0][0][0]);
  print(hx[%d][%d][%d]);
}
`, n, n, n, n, n, n, n, n, n, n, n-2, n-2, n-1)}
	return SpecBenchmark{Name: "459.GemsFDTD", Kernel: k, Targets: []SpecTarget{
		{Label: "update.F90 : 108", Marker: "@hot"},
	}}
}

// specTonto models integral evaluation: streaming loops of exp/sqrt-heavy
// arithmetic over basis pairs.
func specTonto() SpecBenchmark {
	const pairs = 2048
	k := Kernel{Name: "465.tonto", Desc: "gaussian integral primitives", Source: fmt.Sprintf(`
double alpha[%d];
double beta[%d];
double sab[%d];

void main() {
  int p;
  int P = %d;
  for (p = 0; p < P; p++) {     /* @init */
    alpha[p] = 0.5 + 0.001 * p;
    beta[p] = 0.3 + 0.0015 * p;
  }
  for (p = 0; p < P; p++) {     /* @hot */
    double ab = alpha[p] + beta[p];          /* @ab */
    double pre = alpha[p] * beta[p] / ab;    /* @pre */
    sab[p] = exp(0.0 - pre) * sqrt(3.14159265 / ab);   /* @S */
  }
  print(sab[0]);
  print(sab[%d]);
}
`, pairs, pairs, pairs, pairs, pairs-1)}
	return SpecBenchmark{Name: "465.tonto", Kernel: k, Targets: []SpecTarget{
		{Label: "mol.F90 : 5565", Marker: "@hot"},
	}}
}

// specLbm models the stream-collide loop over a structure-of-arrays grid:
// fully parallel, unit stride, division-heavy.
func specLbm() SpecBenchmark {
	const cells = 2048
	k := Kernel{Name: "470.lbm", Desc: "lattice-Boltzmann stream-collide", Source: fmt.Sprintf(`
double f0[%d];
double f1[%d];
double f2[%d];
double f3[%d];
double g0[%d];
double g1[%d];
double g2[%d];
double g3[%d];

void main() {
  int c;
  int C = %d;
  double omega = 1.85;
  for (c = 0; c < C; c++) {     /* @init */
    f0[c] = 0.4 + 0.0001 * c;
    f1[c] = 0.15 + 0.00005 * c;
    f2[c] = 0.15 - 0.00002 * c;
    f3[c] = 0.14 + 0.00001 * c;
  }
  for (c = 0; c < C; c++) {     /* @hot */
    double rho = f0[c] + f1[c] + f2[c] + f3[c];     /* @rho */
    double ux = (f1[c] - f3[c]) / rho;              /* @ux */
    double feq0 = 0.4 * rho;
    double feq1 = 0.15 * rho * (1.0 + 3.0 * ux);
    double feq2 = 0.15 * rho;
    double feq3 = 0.14 * rho * (1.0 - 3.0 * ux);
    g0[c] = f0[c] - omega * (f0[c] - feq0);         /* @S */
    g1[c] = f1[c] - omega * (f1[c] - feq1);
    g2[c] = f2[c] - omega * (f2[c] - feq2);
    g3[c] = f3[c] - omega * (f3[c] - feq3);
  }
  print(g0[0]);
  print(g3[%d]);
}
`, cells, cells, cells, cells, cells, cells, cells, cells, cells, cells-1)}
	return SpecBenchmark{Name: "470.lbm", Kernel: k, Targets: []SpecTarget{
		{Label: "lbm.c : 186", Marker: "@hot"},
	}}
}

// specWrf models the solve_em dynamics update: coupled streaming stencils.
func specWrf() SpecBenchmark {
	const n = 22
	k := Kernel{Name: "481.wrf", Desc: "dynamics advance stencils", Source: fmt.Sprintf(`
double t1[%d][%d][%d];
double t2[%d][%d][%d];
double ru[%d][%d][%d];

void main() {
  int i;
  int j;
  int kk;
  int N = %d;
  double rdx = 0.5;
  double dt = 0.02;
  for (kk = 0; kk < N; kk++) {      /* @init */
    for (j = 0; j < N; j++) {
      for (i = 0; i < N; i++) {
        t1[kk][j][i] = 280.0 + 0.01 * (i + j) - 0.005 * kk;
        ru[kk][j][i] = 10.0 + 0.02 * i - 0.01 * j;
      }
    }
  }
  for (kk = 0; kk < N; kk++) {      /* @hot */
    for (j = 0; j < N; j++) {
      for (i = 0; i < N - 1; i++) { /* @adv */
        t2[kk][j][i] = t1[kk][j][i] -
            dt * rdx * (ru[kk][j][i+1] * t1[kk][j][i+1] -
                        ru[kk][j][i] * t1[kk][j][i]);   /* @S */
      }
    }
  }
  print(t2[0][0][0]);
  print(t2[%d][%d][%d]);
}
`, n, n, n, n, n, n, n, n, n, n, n-1, n-1, n-2)}
	return SpecBenchmark{Name: "481.wrf", Kernel: k, Targets: []SpecTarget{
		{Label: "solve_em.F90 : 179", Marker: "@hot"},
	}}
}

// specSphinx3 models gaussian mixture evaluation: per-mixture Mahalanobis
// distances with a reduction inner loop — the second reduction-anomaly row.
func specSphinx3() SpecBenchmark {
	const mix, feat = 256, 32
	k := Kernel{Name: "482.sphinx3", Desc: "gaussian mixture scoring", Source: fmt.Sprintf(`
double x[%d];
double mean[%d][%d];
double var[%d][%d];
double score[%d];

void main() {
  int m;
  int f;
  int M = %d;
  int F = %d;
  for (f = 0; f < F; f++) {     /* @init-x */
    x[f] = sin(0.2 * f) * 2.0;
  }
  for (m = 0; m < M; m++) {     /* @init-mix */
    for (f = 0; f < F; f++) {
      mean[m][f] = 0.01 * m + 0.05 * f - 1.0;
      var[m][f] = 0.5 + 0.001 * (m + f);
    }
  }
  for (m = 0; m < M; m++) {     /* @hot */
    double d = 0.0;
    for (f = 0; f < F; f++) {   /* @dist */
      double diff = x[f] - mean[m][f];          /* @diff */
      d = d + diff * diff * var[m][f];          /* @red */
    }
    score[m] = d;
  }
  print(score[0]);
  print(score[%d]);
}
`, feat, mix, feat, mix, feat, mix, mix, feat, mix-1)}
	// The paper's vector.c:521 is the inner feature loop: analyzed per
	// mixture, its reduction chain stays serial (avg concurrency 3.3 in
	// Table 1) while icc packs it as a reduction — the anomaly row.
	return SpecBenchmark{Name: "482.sphinx3", Kernel: k, Targets: []SpecTarget{
		{Label: "vector.c : 521", Marker: "@dist"},
	}}
}
