package kernels_test

import (
	"math"
	"testing"

	"github.com/example/vectrace/internal/kernels"
	"github.com/example/vectrace/internal/pipeline"
)

// TestCaseStudyEquivalence verifies that every §4.4 transformation preserves
// program semantics: the original and transformed kernels print the same
// values (within floating-point reassociation tolerance — the
// transformations never reorder the arithmetic inside a statement, so the
// tolerance is tight).
func TestCaseStudyEquivalence(t *testing.T) {
	for _, cs := range kernels.CaseStudies() {
		cs := cs
		t.Run(cs.Name, func(t *testing.T) {
			run := func(k kernels.Kernel) []float64 {
				t.Helper()
				mod, err := pipeline.Compile(k.Name+".c", k.Source)
				if err != nil {
					t.Fatalf("%s: %v", k.Name, err)
				}
				res, err := pipeline.Run(mod, false)
				if err != nil {
					t.Fatalf("%s: %v", k.Name, err)
				}
				if len(res.Output) == 0 {
					t.Fatalf("%s: no output", k.Name)
				}
				return res.Output
			}
			a := run(cs.Original)
			b := run(cs.Transformed)
			if len(a) != len(b) {
				t.Fatalf("output lengths differ: %d vs %d", len(a), len(b))
			}
			for i := range a {
				tol := 1e-12 * (1 + math.Abs(a[i]))
				if math.Abs(a[i]-b[i]) > tol {
					t.Errorf("output %d: original %v, transformed %v", i, a[i], b[i])
				}
			}
		})
	}
}

// TestCaseStudyMarkers ensures every case study's hot marker resolves to a
// real loop in both versions.
func TestCaseStudyMarkers(t *testing.T) {
	for _, cs := range kernels.CaseStudies() {
		for _, k := range []kernels.Kernel{cs.Original, cs.Transformed} {
			mod, err := pipeline.Compile(k.Name+".c", k.Source)
			if err != nil {
				t.Fatalf("%s: %v", k.Name, err)
			}
			if mod.LoopByLine(k.LineOf(cs.HotMarker)) == nil {
				t.Errorf("%s: marker %s does not name a loop", k.Name, cs.HotMarker)
			}
		}
	}
}

// TestSPECKernelsRun executes every Table 1 kernel and sanity-checks the
// marked loops exist and consume a meaningful share of cycles.
func TestSPECKernelsRun(t *testing.T) {
	for _, b := range kernels.SPEC() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			mod, err := pipeline.Compile(b.Kernel.Name+".c", b.Kernel.Source)
			if err != nil {
				t.Fatal(err)
			}
			res, err := pipeline.Run(mod, true)
			if err != nil {
				t.Fatal(err)
			}
			if res.FPOps == 0 {
				t.Fatal("kernel executed no floating-point work")
			}
			for _, target := range b.Targets {
				lm := mod.LoopByLine(b.Kernel.LineOf(target.Marker))
				if lm == nil {
					t.Fatalf("target %s: marker %s is not a loop", target.Label, target.Marker)
				}
				if res.LoopCycles[lm.ID] == 0 && res.LoopFPOps[lm.ID] == 0 {
					// The marked loop may be non-innermost; its cycles are
					// attributed to inner loops, which RuntimeParent links
					// back. Just confirm it executed.
					found := false
					for id, parent := range res.LoopParents {
						if parent == lm.ID || id == lm.ID {
							found = true
							break
						}
					}
					if !found {
						t.Errorf("target %s: loop never executed", target.Label)
					}
				}
			}
		})
	}
}
