// Package simd provides the parameterized SIMD execution model used to
// regenerate the paper's Table 4 (case-study speedups) without the authors'
// hardware.
//
// The model is deliberately simple: each loop's dynamic operation counts
// (from the interpreter's per-loop accounting) are priced with a machine's
// scalar costs; loops the static vectorizer accepted execute their
// per-iteration work W lanes at a time, with a small vectorization overhead
// and an extra penalty for reduction loops (horizontal combines). The model
// is calibrated for *shape* — who speeds up and roughly by how much — not
// absolute cycle fidelity.
package simd

import (
	"github.com/example/vectrace/internal/interp"
	"github.com/example/vectrace/internal/ir"
	"github.com/example/vectrace/internal/profile"
	"github.com/example/vectrace/internal/staticvec"
)

// Machine describes one modeled CPU.
type Machine struct {
	Name string
	// VectorBytes is the SIMD register width (16 for SSE, 32 for AVX).
	VectorBytes int64
	// Scalar costs per operation class, in cycles.
	FPAdd, FPMul, FPDiv, Load, Store, Intr, Branch, Other float64
	// VecOverhead scales vectorized-loop time upward to account for
	// alignment handling and prologue/epilogue work.
	VecOverhead float64
	// ReductionOverhead additionally scales reduction-vectorized loops
	// (horizontal adds).
	ReductionOverhead float64
}

// Lanes returns the number of double-precision lanes.
func (m *Machine) Lanes() float64 { return float64(m.VectorBytes) / 8 }

// XeonE5630 models the paper's primary measurement machine: Westmere-EP
// with 128-bit SSE (2 double lanes).
func XeonE5630() Machine {
	return Machine{
		Name: "Intel Xeon E5630", VectorBytes: 16,
		FPAdd: 3, FPMul: 5, FPDiv: 22, Load: 4, Store: 4, Intr: 40, Branch: 1, Other: 1,
		VecOverhead: 1.15, ReductionOverhead: 1.20,
	}
}

// CoreI72600K models the Sandy Bridge machine: 256-bit AVX (4 double lanes).
func CoreI72600K() Machine {
	return Machine{
		Name: "Intel Core i7 2600K", VectorBytes: 32,
		FPAdd: 3, FPMul: 5, FPDiv: 21, Load: 4, Store: 4, Intr: 36, Branch: 1, Other: 1,
		VecOverhead: 1.25, ReductionOverhead: 1.25,
	}
}

// PhenomII1100T models the AMD K10 machine: 128-bit SSE with slower FP
// division and loads.
func PhenomII1100T() Machine {
	return Machine{
		Name: "AMD Phenom II 1100T", VectorBytes: 16,
		FPAdd: 4, FPMul: 4, FPDiv: 26, Load: 5, Store: 5, Intr: 46, Branch: 1, Other: 1,
		VecOverhead: 1.15, ReductionOverhead: 1.25,
	}
}

// Machines returns the paper's three Table 4 machines.
func Machines() []Machine {
	return []Machine{XeonE5630(), CoreI72600K(), PhenomII1100T()}
}

// scalarCost prices one loop's dynamic op counts at scalar throughput.
func (m *Machine) scalarCost(oc *interp.OpCounts) float64 {
	return float64(oc.FPAdd)*m.FPAdd + float64(oc.FPMul)*m.FPMul + float64(oc.FPDiv)*m.FPDiv +
		float64(oc.Load)*m.Load + float64(oc.Store)*m.Store + float64(oc.Intr)*m.Intr +
		float64(oc.Branch)*m.Branch + float64(oc.Other)*m.Other
}

// SimulateTime prices a whole execution: every loop's exclusive op counts
// are charged at scalar cost, except loops the vectorizer accepted, whose
// work runs W lanes at a time.
func SimulateTime(mod *ir.Module, res *interp.Result, verdicts map[int]staticvec.Verdict, m Machine) float64 {
	total := 0.0
	for loopID, oc := range res.LoopOps {
		cost := m.scalarCost(oc)
		if v, ok := verdicts[loopID]; ok && v.Vectorized {
			cost /= m.Lanes()
			cost *= m.VecOverhead
			if v.Reduction {
				cost *= m.ReductionOverhead
			}
		}
		total += cost
	}
	return total
}

// LoopTime prices only the dynamic work attributed to one loop subtree
// (the loop and every loop nested inside it), for case studies that measure
// "total time spent in the loop" rather than whole-program time.
func LoopTime(mod *ir.Module, res *interp.Result, verdicts map[int]staticvec.Verdict, m Machine, root int) float64 {
	inSubtree := profile.Subtree(mod, res, root)
	total := 0.0
	for loopID, oc := range res.LoopOps {
		if !inSubtree[loopID] {
			continue
		}
		cost := m.scalarCost(oc)
		if v, ok := verdicts[loopID]; ok && v.Vectorized {
			cost /= m.Lanes()
			cost *= m.VecOverhead
			if v.Reduction {
				cost *= m.ReductionOverhead
			}
		}
		total += cost
	}
	return total
}
