package simd_test

import (
	"testing"

	"github.com/example/vectrace/internal/pipeline"
	"github.com/example/vectrace/internal/simd"
	"github.com/example/vectrace/internal/staticvec"
)

func TestMachineConfigs(t *testing.T) {
	ms := simd.Machines()
	if len(ms) != 3 {
		t.Fatalf("machines = %d, want 3", len(ms))
	}
	xeon, i7, phenom := ms[0], ms[1], ms[2]
	if xeon.Lanes() != 2 || phenom.Lanes() != 2 {
		t.Errorf("SSE machines should have 2 double lanes, got %v/%v", xeon.Lanes(), phenom.Lanes())
	}
	if i7.Lanes() != 4 {
		t.Errorf("AVX machine should have 4 double lanes, got %v", i7.Lanes())
	}
	for _, m := range ms {
		if m.VecOverhead < 1 || m.ReductionOverhead < 1 {
			t.Errorf("%s: overheads must be >= 1", m.Name)
		}
		if m.FPDiv <= m.FPAdd {
			t.Errorf("%s: division should cost more than addition", m.Name)
		}
	}
}

func TestVectorizedLoopIsFaster(t *testing.T) {
	src := `
double a[512];
double b[512];
void main() {
  int i;
  for (i = 0; i < 512; i++) { a[i] = 0.5 * i; }
  for (i = 0; i < 512; i++) { b[i] = 2.0 * a[i] + 1.0; }
  print(b[511]);
}
`
	mod, err := pipeline.Compile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipeline.Run(mod, true)
	if err != nil {
		t.Fatal(err)
	}
	verdicts := staticvec.AnalyzeModule(mod)

	m := simd.XeonE5630()
	vectorized := simd.SimulateTime(mod, res, verdicts, m)
	scalar := simd.SimulateTime(mod, res, map[int]staticvec.Verdict{}, m)
	if vectorized >= scalar {
		t.Fatalf("vectorized time %v should beat scalar %v", vectorized, scalar)
	}
	// AVX beats SSE on the same verdicts.
	avx := simd.SimulateTime(mod, res, verdicts, simd.CoreI72600K())
	if avx >= vectorized {
		t.Fatalf("AVX time %v should beat SSE %v", avx, vectorized)
	}
}

func TestLoopTimeSubtree(t *testing.T) {
	src := `
double g;
void main() {
  int i;
  int j;
  for (i = 0; i < 4; i++) {          /* outer: loop 0 */
    for (j = 0; j < 100; j++) {      /* inner: loop 1 */
      g = g + 1.0;
    }
  }
  for (i = 0; i < 50; i++) {         /* separate: loop 2 */
    g = g * 1.01;
  }
}
`
	mod, err := pipeline.Compile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipeline.Run(mod, true)
	if err != nil {
		t.Fatal(err)
	}
	none := map[int]staticvec.Verdict{}
	m := simd.XeonE5630()
	outer := simd.LoopTime(mod, res, none, m, 0)
	inner := simd.LoopTime(mod, res, none, m, 1)
	sep := simd.LoopTime(mod, res, none, m, 2)
	total := simd.SimulateTime(mod, res, none, m)
	if outer <= inner {
		t.Errorf("outer subtree %v must include inner %v", outer, inner)
	}
	if outer+sep >= total {
		t.Errorf("loop subtrees %v+%v should be under the program total %v", outer, sep, total)
	}
	if sep <= 0 {
		t.Error("separate loop time should be positive")
	}
}

func TestReductionOverheadApplied(t *testing.T) {
	src := `
double a[256];
double out;
void main() {
  int i;
  double s;
  s = 0.0;
  for (i = 0; i < 256; i++) { a[i] = 0.5 * i; }
  for (i = 0; i < 256; i++) { s = s + a[i]; }
  out = s;
  print(s);
}
`
	mod, err := pipeline.Compile("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipeline.Run(mod, true)
	if err != nil {
		t.Fatal(err)
	}
	verdicts := staticvec.AnalyzeModule(mod)
	// Find the reduction loop and confirm the verdict carries the flag.
	foundReduction := false
	for _, v := range verdicts {
		if v.Vectorized && v.Reduction {
			foundReduction = true
		}
	}
	if !foundReduction {
		t.Fatal("no reduction-vectorized loop found")
	}
	m := simd.XeonE5630()
	withRed := simd.SimulateTime(mod, res, verdicts, m)
	// Strip the reduction flags: the same loops without the horizontal-add
	// penalty must be at least as fast.
	stripped := make(map[int]staticvec.Verdict, len(verdicts))
	for k, v := range verdicts {
		v.Reduction = false
		stripped[k] = v
	}
	withoutRed := simd.SimulateTime(mod, res, stripped, m)
	if withoutRed > withRed {
		t.Fatalf("reduction overhead missing: %v (with) < %v (without)", withRed, withoutRed)
	}
}
