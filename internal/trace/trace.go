// Package trace defines the execution-trace model produced by the
// instrumenting interpreter and consumed by the DDG builder.
//
// A trace is the sequence of dynamic instruction instances in execution
// order. Each event records the static instruction ID and, for loads and
// stores, the run-time byte address accessed — precisely the information the
// paper's LLVM instrumentation writes to disk ("run-time instances of static
// instructions, including any relevant run-time data such as memory
// addresses for loads/stores, procedure calls, etc.", §3).
//
// Register and control-flow structure is not recorded per event: it is
// static, so the DDG builder recovers it by replaying the event stream
// against the module.
//
// Traces exist in two shapes: the in-memory Trace slice, and the VTR1
// stream consumed through Decoder/RegionScanner, which never materializes
// more than one region (see DESIGN.md §8).
package trace

import (
	"github.com/example/vectrace/internal/ir"
)

// NoAddr marks an event that carries no memory address (everything but
// loads and stores). It is distinct from address 0 so a genuine access to
// byte address 0 survives encoding — the same sentinel discipline ddg.NoAddr
// applies to store provenance.
const NoAddr int64 = -1

// Event is one dynamic instruction instance.
type Event struct {
	// ID is the static instruction ID (module-unique).
	ID int32
	// Addr is the byte address accessed by loads/stores, NoAddr otherwise.
	Addr int64
}

// HasAddr reports whether the event carries a memory address.
func (e Event) HasAddr() bool { return e.Addr != NoAddr }

// Trace is an in-memory execution trace together with the module it was
// produced from.
type Trace struct {
	Module *ir.Module
	Events []Event
}

// Len returns the number of dynamic instruction instances.
func (t *Trace) Len() int { return len(t.Events) }

// Append records one event.
func (t *Trace) Append(id int32, addr int64) {
	t.Events = append(t.Events, Event{ID: id, Addr: addr})
}

// Region is a contiguous sub-trace corresponding to one dynamic execution of
// a source loop, from loop entry to loop exit — the unit the paper analyzes
// ("A subtrace was started upon loop entry and terminated upon loop exit").
type Region struct {
	LoopID int
	// Start and End delimit the half-open event range [Start, End) in the
	// parent trace, excluding the loop.begin/loop.end marker events.
	Start, End int
}

// Events returns the region's event slice within t.
func (t *Trace) RegionEvents(r Region) []Event {
	return t.Events[r.Start:r.End]
}

// openRegion is one entry of the region tracker's open-loop stack.
type openRegion struct {
	loopID int
	start  int
	depth  int
}

// regionTracker is the shared state machine behind the in-memory Regions
// sweep and the streaming RegionScanner: fed one event at a time, it reports
// the dynamic regions of the target loop as they close, with call-stack
// awareness (a return instruction closes any loops opened within the
// returning frame).
type regionTracker struct {
	target int
	stack  []openRegion
	depth  int
	closed []Region // scratch, reused across steps
}

// step feeds the event at absolute index i and returns the target-loop
// regions it closes, in close order. The returned slice is reused by the
// next call.
func (t *regionTracker) step(i int, in *ir.Instr) []Region {
	t.closed = t.closed[:0]
	switch in.Op {
	case ir.OpLoopBegin:
		t.stack = append(t.stack, openRegion{loopID: int(in.Loop), start: i + 1, depth: t.depth})
	case ir.OpLoopEnd:
		if len(t.stack) > 0 {
			o := t.stack[len(t.stack)-1]
			t.stack = t.stack[:len(t.stack)-1]
			if o.loopID == t.target {
				t.closed = append(t.closed, Region{LoopID: t.target, Start: o.start, End: i})
			}
		}
	case ir.OpCall:
		t.depth++
	case ir.OpRet:
		// Close loops opened in the returning frame (early return from
		// inside a loop never emits its loop.end marker).
		t.closeTo(t.depth, i)
		if t.depth > 0 {
			t.depth--
		}
	}
	return t.closed
}

// finish closes every still-open region at end-of-trace index n and returns
// them in close order.
func (t *regionTracker) finish(n int) []Region {
	t.closed = t.closed[:0]
	t.closeTo(0, n)
	return t.closed
}

// closeTo pops stack entries at or above minDepth, recording target regions.
func (t *regionTracker) closeTo(minDepth, endIdx int) {
	for len(t.stack) > 0 && t.stack[len(t.stack)-1].depth >= minDepth {
		o := t.stack[len(t.stack)-1]
		t.stack = t.stack[:len(t.stack)-1]
		if o.loopID == t.target {
			t.closed = append(t.closed, Region{LoopID: t.target, Start: o.start, End: endIdx})
		}
	}
}

// earliestOpen returns the start index of the earliest open target-loop
// region, or -1 when none is open. While a target region is open, a
// streaming scanner must retain events from this index on; when none is,
// nothing needs to be retained — that is the bounded-memory invariant.
func (t *regionTracker) earliestOpen() int {
	for _, o := range t.stack {
		if o.loopID == t.target {
			return o.start
		}
	}
	return -1
}

// Regions scans the trace and returns every dynamic region of the given
// source loop, in execution order of region close. Loop markers are matched
// with awareness of the call stack: a return instruction closes any loops
// opened within the returning frame.
func (t *Trace) Regions(loopID int) []Region {
	var out []Region
	tk := regionTracker{target: loopID}
	m := t.Module
	for i, ev := range t.Events {
		out = append(out, tk.step(i, m.InstrAt(ev.ID))...)
	}
	out = append(out, tk.finish(len(t.Events))...)
	return out
}

// Slice returns a new Trace containing only the given region's events (the
// module is shared). The DDG for a region is built from such a slice.
func (t *Trace) Slice(r Region) *Trace {
	return &Trace{Module: t.Module, Events: t.Events[r.Start:r.End]}
}
