// Package trace defines the execution-trace model produced by the
// instrumenting interpreter and consumed by the DDG builder.
//
// A trace is the sequence of dynamic instruction instances in execution
// order. Each event records the static instruction ID and, for loads and
// stores, the run-time byte address accessed — precisely the information the
// paper's LLVM instrumentation writes to disk ("run-time instances of static
// instructions, including any relevant run-time data such as memory
// addresses for loads/stores, procedure calls, etc.", §3).
//
// Register and control-flow structure is not recorded per event: it is
// static, so the DDG builder recovers it by replaying the event stream
// against the module.
package trace

import (
	"github.com/example/vectrace/internal/ir"
)

// Event is one dynamic instruction instance.
type Event struct {
	// ID is the static instruction ID (module-unique).
	ID int32
	// Addr is the byte address accessed by loads/stores, else 0.
	Addr int64
}

// Trace is an in-memory execution trace together with the module it was
// produced from.
type Trace struct {
	Module *ir.Module
	Events []Event
}

// Len returns the number of dynamic instruction instances.
func (t *Trace) Len() int { return len(t.Events) }

// Append records one event.
func (t *Trace) Append(id int32, addr int64) {
	t.Events = append(t.Events, Event{ID: id, Addr: addr})
}

// Region is a contiguous sub-trace corresponding to one dynamic execution of
// a source loop, from loop entry to loop exit — the unit the paper analyzes
// ("A subtrace was started upon loop entry and terminated upon loop exit").
type Region struct {
	LoopID int
	// Start and End delimit the half-open event range [Start, End) in the
	// parent trace, excluding the loop.begin/loop.end marker events.
	Start, End int
}

// Events returns the region's event slice within t.
func (t *Trace) RegionEvents(r Region) []Event {
	return t.Events[r.Start:r.End]
}

// Regions scans the trace and returns every dynamic region of the given
// source loop, in execution order. Loop markers are matched with awareness
// of the call stack: a return instruction closes any loops opened within the
// returning frame.
func (t *Trace) Regions(loopID int) []Region {
	var out []Region
	type open struct {
		loopID int
		start  int
		depth  int
	}
	var stack []open
	depth := 0
	m := t.Module
	closeTo := func(minDepth, endIdx int) {
		for len(stack) > 0 && stack[len(stack)-1].depth >= minDepth {
			o := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if o.loopID == loopID {
				out = append(out, Region{LoopID: loopID, Start: o.start, End: endIdx})
			}
		}
	}
	for i, ev := range t.Events {
		in := m.InstrAt(ev.ID)
		switch in.Op {
		case ir.OpLoopBegin:
			stack = append(stack, open{loopID: int(in.Loop), start: i + 1, depth: depth})
		case ir.OpLoopEnd:
			if len(stack) > 0 {
				o := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if o.loopID == loopID {
					out = append(out, Region{LoopID: loopID, Start: o.start, End: i})
				}
			}
		case ir.OpCall:
			depth++
		case ir.OpRet:
			// Close loops opened in the returning frame (early return from
			// inside a loop never emits its loop.end marker).
			closeTo(depth, i)
			if depth > 0 {
				depth--
			}
		}
	}
	closeTo(0, len(t.Events))
	return out
}

// Slice returns a new Trace containing only the given region's events (the
// module is shared). The DDG for a region is built from such a slice.
func (t *Trace) Slice(r Region) *Trace {
	return &Trace{Module: t.Module, Events: t.Events[r.Start:r.End]}
}
