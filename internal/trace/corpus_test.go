package trace_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/example/vectrace/internal/trace"
)

// TestRegenerateVTR2FuzzCorpus rewrites the on-disk seed corpora for
// FuzzDecodeVTR2 and FuzzRegionIndex under testdata/fuzz/. Skipped unless
// VECTRACE_REGEN_CORPUS=1: the corpora are committed, and regeneration is
// only needed when the wire format (and therefore what a useful seed looks
// like) changes.
func TestRegenerateVTR2FuzzCorpus(t *testing.T) {
	if os.Getenv("VECTRACE_REGEN_CORPUS") != "1" {
		t.Skip("set VECTRACE_REGEN_CORPUS=1 to rewrite testdata/fuzz corpora")
	}
	flate := fuzzContainerBytes(t, trace.ContainerOptions{BlockBytes: 128, Codec: "flate"})
	none := fuzzContainerBytes(t, trace.ContainerOptions{BlockBytes: 96, Codec: "none"})

	write := func(dir string, i int, data []byte) {
		t.Helper()
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed%d", i)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	decode := [][]byte{
		flate,
		none,
		[]byte("VTR2\x00"),
		[]byte("VTR2\x01"),
		flate[:len(flate)/2],
		none[:len(none)-9],
	}
	hdrFlip := append([]byte{}, flate...)
	hdrFlip[7] ^= 0x40
	midFlip := append([]byte{}, none...)
	midFlip[len(midFlip)/2] ^= 0x40
	decode = append(decode, hdrFlip, midFlip)
	for i, data := range decode {
		write("testdata/fuzz/FuzzDecodeVTR2", i, data)
	}

	index := [][]byte{none, flate}
	for _, off := range []int{len(none) - 6, len(none) - 12, len(none) - 25, len(none) - 38} {
		c := append([]byte{}, none...)
		c[off] ^= 0x11
		index = append(index, c)
	}
	index = append(index, none[:len(none)-8], none[:len(none)-1])
	for i, data := range index {
		write("testdata/fuzz/FuzzRegionIndex", i, data)
	}
}
