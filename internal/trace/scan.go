package trace

import (
	"context"
	"fmt"
	"io"

	"github.com/example/vectrace/internal/ir"
	"github.com/example/vectrace/internal/obs"
)

// An EventSource yields trace events one at a time. Next returns io.EOF
// after the final event. *Decoder is the canonical streaming source; a
// SliceSource adapts an in-memory event slice.
type EventSource interface {
	Next() (Event, error)
}

// SliceSource is an EventSource over an in-memory event slice.
type SliceSource struct {
	Events []Event
	pos    int
}

// Next implements EventSource.
func (s *SliceSource) Next() (Event, error) {
	if s.pos >= len(s.Events) {
		return Event{}, io.EOF
	}
	ev := s.Events[s.pos]
	s.pos++
	return ev, nil
}

// A RegionScanner consumes an event stream and yields the dynamic regions
// of one source loop, one materialized sub-trace at a time, in the order
// the regions close — exactly the semantics of Trace.Regions, including
// call-stack-aware closing on early returns.
//
// The scanner retains events only while a target-loop region is open, so
// peak memory is bounded by the largest single region (plus nested marker
// events), not by the trace length. That is the property that lets the
// analysis pipeline process traces far larger than memory.
type RegionScanner struct {
	mod    *ir.Module
	ctx    context.Context
	src    EventSource
	tk     regionTracker
	buf    []Event  // retained events; buf[0] is absolute index base
	base   int      // absolute index of buf[0]
	idx    int      // absolute index of the next event
	peak   int      // high-water mark of len(buf)
	active bool     // a target region is open, events are being retained
	queue  []*Trace // regions closed but not yet returned
	closed int      // regions closed so far: the index error contexts name
	done   bool
	err    error

	// rec, when non-nil, receives scan counters. Per-event costs stay off
	// the hot path: consumed events accumulate in flushed and are published
	// only at the existing scanCtxCheckInterval poll and at EOF.
	rec     *obs.Recorder
	flushed int // absolute event index already published to rec
}

// scanCtxCheckInterval is the scanner's cancellation-poll granularity:
// ctx.Err is consulted once per this many consumed events (and on every
// Next call), bounding cancellation latency without a per-event check.
const scanCtxCheckInterval = 4096

// NewRegionScanner returns a scanner yielding the dynamic regions of the
// given source loop from src, validated against mod.
func NewRegionScanner(mod *ir.Module, loopID int, src EventSource) *RegionScanner {
	return NewRegionScannerCtx(context.Background(), mod, loopID, src)
}

// NewRegionScannerCtx is NewRegionScanner with cooperative cancellation:
// ctx is polled at region boundaries and every scanCtxCheckInterval events,
// so scanning a multi-gigabyte stream stops shortly after ctx is done. The
// cancellation error wraps ctx.Err(), making it visible to errors.Is as
// context.Canceled or context.DeadlineExceeded.
func NewRegionScannerCtx(ctx context.Context, mod *ir.Module, loopID int, src EventSource) *RegionScanner {
	if ctx == nil {
		ctx = context.Background()
	}
	return &RegionScanner{mod: mod, ctx: ctx, src: src, tk: regionTracker{target: loopID}, rec: obs.FromContext(ctx)}
}

// MaxRetained returns the high-water mark of retained events — the
// scanner's peak buffering, which tracks the largest open region rather
// than the stream length.
func (s *RegionScanner) MaxRetained() int { return s.peak }

// emit materializes closed regions into the yield queue, copying out of the
// retention buffer (which is about to be reused).
func (s *RegionScanner) emit(closed []Region) {
	for _, r := range closed {
		events := make([]Event, r.End-r.Start)
		copy(events, s.buf[r.Start-s.base:r.End-s.base])
		s.queue = append(s.queue, &Trace{Module: s.mod, Events: events})
		s.closed++
	}
	if s.rec != nil && len(closed) > 0 {
		s.rec.Add(obs.RegionsScanned, int64(len(closed)))
	}
}

// flushStats publishes the scan counters accumulated since the last flush.
// Called at the cancellation-poll granularity and at EOF, so a nil recorder
// costs one predictable branch per poll, never per event.
func (s *RegionScanner) flushStats() {
	if s.rec == nil {
		return
	}
	if s.idx > s.flushed {
		s.rec.Add(obs.EventsScanned, int64(s.idx-s.flushed))
		s.flushed = s.idx
	}
	s.rec.Max(obs.ScanPeakRetainedEvents, int64(s.peak))
}

// failAt records a scan error, naming the event index and the index of the
// region being formed when the stream went bad — so a corrupt-trace report
// localizes the damage in both the byte stream (the decoder's offset
// context) and the region sequence (ours).
func (s *RegionScanner) failAt(err error) error {
	s.err = fmt.Errorf("trace: scanning region %d (event %d): %w", s.closed, s.idx, err)
	return s.err
}

// Next returns the next closed region as a materialized sub-trace sharing
// the scanner's module. It returns io.EOF when the stream is exhausted.
func (s *RegionScanner) Next() (*Trace, error) {
	if s.err != nil {
		return nil, s.err
	}
	if err := s.canceled(); err != nil {
		return nil, err
	}
	for {
		if len(s.queue) > 0 {
			tr := s.queue[0]
			s.queue = s.queue[1:]
			return tr, nil
		}
		if s.done {
			return nil, io.EOF
		}
		if s.idx%scanCtxCheckInterval == 0 {
			if err := s.canceled(); err != nil {
				return nil, err
			}
			s.flushStats()
		}
		ev, err := s.src.Next()
		if err == io.EOF {
			s.done = true
			s.emit(s.tk.finish(s.idx))
			s.buf = nil
			s.flushStats()
			continue
		}
		if err != nil {
			return nil, s.failAt(err)
		}
		if ev.ID < 0 || int(ev.ID) >= s.mod.NumInstrs {
			return nil, s.failAt(fmt.Errorf("instruction ID %d not in module (%d instructions): %w",
				ev.ID, s.mod.NumInstrs, ErrCorruptTrace))
		}
		// Closed regions end at s.idx exclusive, so they are materialized
		// before the current event (an end marker or a return) is retained.
		s.emit(s.tk.step(s.idx, s.mod.InstrAt(ev.ID)))
		if start := s.tk.earliestOpen(); start >= 0 {
			if !s.active {
				// The current event is the target loop.begin marker: the
				// region's events start at the next index.
				s.active = true
				s.base = start
				s.buf = s.buf[:0]
			}
			if s.idx >= s.base {
				s.buf = append(s.buf, ev)
				if len(s.buf) > s.peak {
					s.peak = len(s.buf)
				}
			}
		} else if s.active {
			// The last open target region just closed: nothing needs to be
			// retained until the next target loop.begin.
			s.active = false
			s.buf = s.buf[:0]
		}
		s.idx++
	}
}

// canceled reports (and latches) cooperative cancellation, wrapping the
// context's error so errors.Is sees the precise cause.
func (s *RegionScanner) canceled() error {
	if s.ctx == nil {
		return nil
	}
	if err := s.ctx.Err(); err != nil {
		s.err = fmt.Errorf("trace: scan canceled at event %d: %w", s.idx, err)
		return s.err
	}
	return nil
}
