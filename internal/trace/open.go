package trace

import (
	"errors"
	"fmt"
	"io"

	"github.com/example/vectrace/internal/obs"
)

// Trace file format names, as sniffed by OpenTrace and selected by
// `vectrace record -format`.
const (
	FormatVTR1 = "vtr1"
	FormatVTR2 = "vtr2"
)

// Opened is the result of format-sniffing a trace file: which format it
// is, a sequential event source that works for both, and — for a VTR2 file
// whose footer verified — the random-access Container enabling region
// seeks and parallel scanning.
type Opened struct {
	// Format is FormatVTR1 or FormatVTR2.
	Format string
	// Container is non-nil only for a VTR2 file with a verified footer
	// index. VTR1 files and salvage-mode VTR2 files leave it nil, telling
	// the pipeline to take the sequential path.
	Container *Container
	// IndexErr records why a VTR2 footer was rejected (nil otherwise). The
	// sequential Source still salvages every intact block before the
	// damage, so a trace truncated in its footer analyzes fully — only the
	// seek index is lost.
	IndexErr error
	src      EventSource
}

// Source returns a fresh-at-open sequential event source for the file.
// Valid for exactly one pass.
func (o *Opened) Source() EventSource { return o.src }

// OpenTrace sniffs the format of a trace file and opens it: VTR1 files get
// the classic sequential Decoder, VTR2 files get the footer index plus a
// sequential block walker (falling back to salvage when the footer is
// damaged — IndexErr says why, and damage in the data area still surfaces
// per-region, exactly like VTR1). Bytes consumed through either path land
// in the recorder's trace_bytes_read counter; a nil recorder is fine.
func OpenTrace(r io.ReaderAt, size int64, rec *obs.Recorder) (*Opened, error) {
	var m [4]byte
	if size < 4 {
		return nil, corruptAt("reading magic", size, "file too small (%d bytes) to hold a trace header", size)
	}
	if n, err := r.ReadAt(m[:], 0); n != len(m) {
		if err == nil || err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
			err = fmt.Errorf("unexpected EOF: %w", ErrCorruptTrace)
		}
		return nil, &OffsetError{Context: "reading magic", Offset: int64(n), Err: err}
	}
	seq := func() EventSource {
		return NewBlockSource(&obs.CountingReader{R: io.NewSectionReader(r, 0, size), Rec: rec, C: obs.TraceBytesRead}, rec)
	}
	switch string(m[:]) {
	case magic:
		d := NewDecoder(&obs.CountingReader{R: io.NewSectionReader(r, 0, size), Rec: rec, C: obs.TraceBytesRead})
		return &Opened{Format: FormatVTR1, src: d}, nil
	case magic2:
		c, err := OpenContainer(r, size, rec)
		if err != nil {
			return &Opened{Format: FormatVTR2, IndexErr: err, src: seq()}, nil
		}
		return &Opened{Format: FormatVTR2, Container: c, src: seq()}, nil
	default:
		return nil, corruptAt("reading magic", 0, "bad magic %q", m[:])
	}
}

// ReadAll drains src into a slice — the whole-trace materialization used
// by full-graph analyses and format transcoding.
func ReadAll(src EventSource) ([]Event, error) {
	var events []Event
	for {
		ev, err := src.Next()
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return nil, err
		}
		events = append(events, ev)
	}
}
