package trace_test

import (
	"bytes"
	"io"
	"testing"

	"github.com/example/vectrace/internal/trace"
)

// fuzzSeed builds a VTR1 byte stream from events, for seeding the corpus.
func fuzzSeed(events []trace.Event) []byte {
	var buf bytes.Buffer
	if err := trace.Encode(&buf, events); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzDecode feeds arbitrary bytes to the VTR1 decoder. The decoder must
// never panic or hang, and — because decoding is strict (minimal varints,
// no trailing data, reserved values rejected) — any input it accepts must
// re-encode to exactly the same bytes (round-trip property).
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("VTR1"))
	f.Add([]byte("VTR1\x00"))
	f.Add(fuzzSeed(nil))
	f.Add(fuzzSeed([]trace.Event{
		{ID: 0, Addr: trace.NoAddr},
		{ID: 1, Addr: 0},
		{ID: 2, Addr: 4096},
		{ID: 3, Addr: 4088},
		{ID: 2, Addr: trace.NoAddr},
	}))
	f.Add(fuzzSeed([]trace.Event{
		{ID: 1<<30 - 1, Addr: -9000},
		{ID: 7, Addr: 1 << 40},
	}))
	// Deliberately malformed seeds: bad magic, truncated event, non-minimal
	// varint, reserved address, trailing garbage.
	f.Add([]byte("VTR0\x00"))
	f.Add([]byte("VTR1\x84"))
	f.Add([]byte("VTR1\x84\x00\x00"))
	f.Add([]byte("VTR1\x03\x01\x00"))
	f.Add([]byte("VTR1\x00\x7f"))

	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := trace.DecodeBytes(data)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := trace.Encode(&buf, events); err != nil {
			t.Fatalf("decoded events failed to re-encode: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatalf("round trip changed bytes:\n in: %x\nout: %x", data, buf.Bytes())
		}
		// The streaming decoder must agree with the one-shot path.
		dec := trace.NewDecoder(bytes.NewReader(data))
		for i := range events {
			ev, err := dec.Next()
			if err != nil {
				t.Fatalf("streaming decode failed at event %d: %v", i, err)
			}
			if ev != events[i] {
				t.Fatalf("event %d: streaming %+v, one-shot %+v", i, ev, events[i])
			}
		}
		if _, err := dec.Next(); err != io.EOF {
			t.Fatalf("streaming decoder: want io.EOF after %d events, got %v", len(events), err)
		}
	})
}
