package trace_test

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"github.com/example/vectrace/internal/pipeline"
	"github.com/example/vectrace/internal/trace"
)

// fuzzSeed builds a VTR1 byte stream from events, for seeding the corpus.
func fuzzSeed(events []trace.Event) []byte {
	var buf bytes.Buffer
	if err := trace.Encode(&buf, events); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzDecode feeds arbitrary bytes to the VTR1 decoder. The decoder must
// never panic or hang, and — because decoding is strict (minimal varints,
// no trailing data, reserved values rejected) — any input it accepts must
// re-encode to exactly the same bytes (round-trip property).
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("VTR1"))
	f.Add([]byte("VTR1\x00"))
	f.Add(fuzzSeed(nil))
	f.Add(fuzzSeed([]trace.Event{
		{ID: 0, Addr: trace.NoAddr},
		{ID: 1, Addr: 0},
		{ID: 2, Addr: 4096},
		{ID: 3, Addr: 4088},
		{ID: 2, Addr: trace.NoAddr},
	}))
	f.Add(fuzzSeed([]trace.Event{
		{ID: 1<<30 - 1, Addr: -9000},
		{ID: 7, Addr: 1 << 40},
	}))
	// Deliberately malformed seeds: bad magic, truncated event, non-minimal
	// varint, reserved address, trailing garbage.
	f.Add([]byte("VTR0\x00"))
	f.Add([]byte("VTR1\x84"))
	f.Add([]byte("VTR1\x84\x00\x00"))
	f.Add([]byte("VTR1\x03\x01\x00"))
	f.Add([]byte("VTR1\x00\x7f"))

	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := trace.DecodeBytes(data)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := trace.Encode(&buf, events); err != nil {
			t.Fatalf("decoded events failed to re-encode: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatalf("round trip changed bytes:\n in: %x\nout: %x", data, buf.Bytes())
		}
		// The streaming decoder must agree with the one-shot path.
		dec := trace.NewDecoder(bytes.NewReader(data))
		for i := range events {
			ev, err := dec.Next()
			if err != nil {
				t.Fatalf("streaming decode failed at event %d: %v", i, err)
			}
			if ev != events[i] {
				t.Fatalf("event %d: streaming %+v, one-shot %+v", i, ev, events[i])
			}
		}
		if _, err := dec.Next(); err != io.EOF {
			t.Fatalf("streaming decoder: want io.EOF after %d events, got %v", len(events), err)
		}
	})
}

// fuzzScannerSrc is the program behind FuzzRegionScanner's seed corpus: an
// inner loop on line 7 that executes three dynamic regions.
const fuzzScannerSrc = `
double a[16];
double s;
void main() {
  int t; int i;
  for (t = 0; t < 3; t++) {
    for (i = 1; i < 16; i++) {  /* inner loop: line 7 */
      a[i] = a[i-1] * 0.5 + 0.25 * i;
    }
  }
  for (i = 0; i < 16; i++) { s = s + a[i]; }
  print(s);
}
`

// FuzzRegionScanner drives arbitrary bytes through the streaming decoder and
// the region scanner. The scanner must never panic or hang: every input
// either scans to clean io.EOF — in which case it must agree with the
// in-memory Trace.Regions path — or fails with a typed error wrapping
// ErrCorruptTrace (a bytes.Reader cannot produce genuine I/O errors, so
// corruption is the only legitimate failure here).
func FuzzRegionScanner(f *testing.F) {
	mod, err := pipeline.Compile("fuzz.c", fuzzScannerSrc)
	if err != nil {
		f.Fatal(err)
	}
	loop := mod.LoopByLine(7)
	if loop == nil {
		f.Fatal("fuzz program has no loop on line 7")
	}
	var buf bytes.Buffer
	if _, err := pipeline.Record(mod, &buf); err != nil {
		f.Fatal(err)
	}
	recorded := buf.Bytes()

	// Seed with the clean recording, truncations at structural boundaries,
	// single-byte corruptions, and degenerate streams.
	f.Add(append([]byte{}, recorded...))
	for _, cut := range []int{0, 1, 4, 5, len(recorded) / 3, len(recorded) / 2, len(recorded) - 1} {
		if cut >= 0 && cut <= len(recorded) {
			f.Add(append([]byte{}, recorded[:cut]...))
		}
	}
	for _, off := range []int{5, len(recorded) / 2, len(recorded) - 2} {
		corrupt := append([]byte{}, recorded...)
		corrupt[off] ^= 0x55
		f.Add(corrupt)
	}
	f.Add([]byte{})
	f.Add([]byte("VTR1"))
	f.Add(fuzzSeed(nil))
	f.Add(fuzzSeed([]trace.Event{{ID: 1 << 29, Addr: trace.NoAddr}})) // out-of-module ID

	f.Fuzz(func(t *testing.T, data []byte) {
		sc := trace.NewRegionScanner(mod, loop.ID, trace.NewDecoder(bytes.NewReader(data)))
		regions := 0
		for {
			sub, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				if !errors.Is(err, trace.ErrCorruptTrace) {
					t.Fatalf("scanner error %v does not wrap ErrCorruptTrace", err)
				}
				return
			}
			if sub == nil || sub.Module != mod {
				t.Fatal("scanner yielded a region without the source module")
			}
			regions++
			if regions > 1<<16 {
				t.Fatalf("runaway scan: %d regions from %d bytes", regions, len(data))
			}
		}
		// Clean EOF means every event decoded and was module-valid, so the
		// in-memory path must agree — with one allowed divergence: the
		// streaming decoder stops at the end-of-stream sentinel, while the
		// one-shot decoder additionally rejects trailing bytes after it.
		events, err := trace.DecodeBytes(data)
		if err != nil {
			if strings.Contains(err.Error(), "trailing data") {
				return
			}
			t.Fatalf("scanner accepted a stream the one-shot decoder rejects: %v", err)
		}
		tr := &trace.Trace{Module: mod, Events: events}
		if want := len(tr.Regions(loop.ID)); want != regions {
			t.Fatalf("scanner found %d regions, in-memory path %d", regions, want)
		}
	})
}
