package trace

// The push-side counterpart of RegionScanner: RegionFeed routes a trace
// event stream into per-region sinks without buffering region events. Where
// the scanner materializes each closed region as a sub-trace (retaining its
// events while open), the feed hands every event to the sink of each open
// target region the moment it arrives — the surface the one-pass analysis
// kernel consumes, and the reason its peak memory is independent of region
// length. Region-boundary semantics (call-stack-aware closing, nesting,
// marker exclusion) are the shared regionTracker's, so the feed yields
// regions in exactly the scanner's order.

import (
	"context"
	"fmt"
	"io"

	"github.com/example/vectrace/internal/ir"
	"github.com/example/vectrace/internal/obs"
)

// A RegionSink receives the events of one dynamic region of the target
// loop, in trace order, as they are scanned. Exactly one terminal call
// follows the events: Close with the region's index in close order (the
// index RegionReport carries — unknowable at open time, since nested
// same-loop regions close before the outer one), or Abort when the stream
// fails or is canceled while the region is open.
type RegionSink interface {
	Event(ev Event)
	Close(index int)
	Abort()
}

// A SinkFactory opens the sink for the next dynamic region. It is called
// once per target-loop entry, at the loop.begin marker.
type SinkFactory func() RegionSink

// openSink is one open target-loop region and its sink. start (the absolute
// index of the region's first event) is unique per open region and ties a
// tracker-closed Region back to its sink.
type openSink struct {
	start int
	sink  RegionSink
}

// A RegionFeed consumes an event stream one Push at a time and dispatches
// events to the sinks of open target-loop regions. Errors latch: after a
// failed Push (or a Fail), open sinks have been aborted and every further
// call returns the same error.
type RegionFeed struct {
	mod    *ir.Module
	ctx    context.Context
	loopID int
	make   SinkFactory
	tk     regionTracker
	open   []openSink
	idx    int // absolute index of the next event
	closed int // regions closed so far
	err    error
	done   bool

	rec     *obs.Recorder
	flushed int
}

// NewRegionFeed returns a feed dispatching the dynamic regions of the given
// source loop to sinks from factory, validating events against mod. The
// context is polled at the scanner's granularity (every scanCtxCheckInterval
// events); on cancellation open sinks are aborted.
func NewRegionFeed(ctx context.Context, mod *ir.Module, loopID int, factory SinkFactory) *RegionFeed {
	if ctx == nil {
		ctx = context.Background()
	}
	return &RegionFeed{
		mod: mod, ctx: ctx, loopID: loopID, make: factory,
		tk:  regionTracker{target: loopID},
		rec: obs.FromContext(ctx),
	}
}

// Closed returns the number of target-loop regions closed so far.
func (f *RegionFeed) Closed() int { return f.closed }

// abortOpen aborts every open sink, outermost last, and forgets them.
func (f *RegionFeed) abortOpen() {
	for i := len(f.open) - 1; i >= 0; i-- {
		f.open[i].sink.Abort()
		f.open[i].sink = nil
	}
	f.open = f.open[:0]
}

// failAt latches a scan error with the scanner's region/event context and
// aborts open sinks.
func (f *RegionFeed) failAt(err error) error {
	f.err = fmt.Errorf("trace: scanning region %d (event %d): %w", f.closed, f.idx, err)
	f.abortOpen()
	return f.err
}

// canceled latches cooperative cancellation, wrapping the context's error.
func (f *RegionFeed) canceled() error {
	if err := f.ctx.Err(); err != nil {
		f.err = fmt.Errorf("trace: scan canceled at event %d: %w", f.idx, err)
		f.abortOpen()
		return f.err
	}
	return nil
}

// flushStats publishes accumulated event counts at poll granularity.
func (f *RegionFeed) flushStats() {
	if f.rec == nil {
		return
	}
	if f.idx > f.flushed {
		f.rec.Add(obs.EventsScanned, int64(f.idx-f.flushed))
		f.flushed = f.idx
	}
}

// closeRegion resolves a tracker-closed region back to its sink (matched by
// unique start index; scanned from the innermost end, where it almost
// always is) and closes it with the next close-order index.
func (f *RegionFeed) closeRegion(r Region) {
	for i := len(f.open) - 1; i >= 0; i-- {
		if f.open[i].start == r.Start {
			f.open[i].sink.Close(f.closed)
			f.open = append(f.open[:i], f.open[i+1:]...)
			break
		}
	}
	f.closed++
	if f.rec != nil {
		f.rec.Add(obs.RegionsScanned, 1)
	}
}

// Push feeds the next trace event. Region closes triggered by this event
// (its loop.end/return, which belongs to no target region) are dispatched
// before the event itself reaches any still-open outer region's sink.
func (f *RegionFeed) Push(ev Event) error {
	if f.err != nil {
		return f.err
	}
	if f.idx%scanCtxCheckInterval == 0 {
		if err := f.canceled(); err != nil {
			return err
		}
		f.flushStats()
	}
	if ev.ID < 0 || int(ev.ID) >= f.mod.NumInstrs {
		return f.failAt(fmt.Errorf("instruction ID %d not in module (%d instructions): %w",
			ev.ID, f.mod.NumInstrs, ErrCorruptTrace))
	}
	in := f.mod.InstrAt(ev.ID)
	for _, r := range f.tk.step(f.idx, in) {
		f.closeRegion(r)
	}
	if in.Op == ir.OpLoopBegin && int(in.Loop) == f.loopID {
		// The region's events start at the next index; the marker itself is
		// excluded (but still feeds any open outer region below).
		f.open = append(f.open, openSink{start: f.idx + 1, sink: f.make()})
	}
	for i := range f.open {
		if f.open[i].start <= f.idx {
			f.open[i].sink.Event(ev)
		}
	}
	f.idx++
	return nil
}

// Finish closes the stream: every still-open region closes at the current
// index (early-return semantics, matching the scanner), in LIFO order.
// It returns the total number of regions dispatched.
func (f *RegionFeed) Finish() (int, error) {
	if f.err != nil {
		return f.closed, f.err
	}
	for _, r := range f.tk.finish(f.idx) {
		f.closeRegion(r)
	}
	f.flushStats()
	f.done = true
	return f.closed, nil
}

// Fail aborts the feed with an upstream source error (decoder corruption,
// I/O failure): open sinks are aborted and the wrapped error latches.
func (f *RegionFeed) Fail(err error) error {
	if f.err != nil {
		return f.err
	}
	return f.failAt(err)
}

// FeedRegions drains src through a RegionFeed: the pull-driver shape the
// pipeline uses when the events come from a decoder rather than a live
// interpreter. Returns the number of regions dispatched and the first
// error (source failure, corrupt event, or cancellation).
func FeedRegions(ctx context.Context, mod *ir.Module, loopID int, src EventSource, factory SinkFactory) (int, error) {
	f := NewRegionFeed(ctx, mod, loopID, factory)
	for {
		ev, err := src.Next()
		if err == io.EOF {
			return f.Finish()
		}
		if err != nil {
			return f.closed, f.Fail(err)
		}
		if err := f.Push(ev); err != nil {
			return f.closed, err
		}
	}
}
