package trace_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"github.com/example/vectrace/internal/pipeline"
	"github.com/example/vectrace/internal/trace"
)

// TestAddressZeroDistinctFromNoAddr is the regression test for the encoder
// conflating "no address" with byte address 0: a doctored trace accessing
// address 0 must survive a round trip with the access intact, and events
// without an address must come back as NoAddr, not 0.
func TestAddressZeroDistinctFromNoAddr(t *testing.T) {
	events := []trace.Event{
		{ID: 1, Addr: 0},            // genuine access to byte address 0
		{ID: 2, Addr: trace.NoAddr}, // no memory access
		{ID: 3, Addr: 0x100},
		{ID: 4, Addr: 0}, // back to address 0: negative delta
		{ID: 5, Addr: trace.NoAddr},
	}
	var buf bytes.Buffer
	if err := trace.Encode(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := trace.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
	if !got[0].HasAddr() || got[1].HasAddr() {
		t.Fatal("HasAddr conflates address 0 with no address")
	}
}

// TestEncoderDecoderStreaming drives the incremental API directly: events
// written one at a time must be readable one at a time, with io.EOF
// terminating the stream.
func TestEncoderDecoderStreaming(t *testing.T) {
	events := []trace.Event{
		{ID: 9, Addr: trace.NoAddr},
		{ID: 0, Addr: 0x40},
		{ID: 0, Addr: 0x48},
		{ID: 12, Addr: trace.NoAddr},
	}
	var buf bytes.Buffer
	enc := trace.NewEncoder(&buf)
	for _, ev := range events {
		if err := enc.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := enc.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := enc.Write(trace.Event{ID: 1, Addr: trace.NoAddr}); err == nil {
		t.Fatal("Write after Close succeeded")
	}

	dec := trace.NewDecoder(bytes.NewReader(buf.Bytes()))
	for i, want := range events {
		got, err := dec.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("event %d = %+v, want %+v", i, got, want)
		}
	}
	for range 2 {
		if _, err := dec.Next(); err != io.EOF {
			t.Fatalf("after sentinel: %v, want io.EOF", err)
		}
	}
}

func TestEncoderEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	enc := trace.NewEncoder(&buf)
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := trace.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d events from empty stream", len(got))
	}
}

func TestEncoderRejectsBadID(t *testing.T) {
	enc := trace.NewEncoder(io.Discard)
	if err := enc.Write(trace.Event{ID: -1, Addr: trace.NoAddr}); err == nil {
		t.Fatal("negative ID accepted")
	}
}

// vtr prepends the magic to raw event bytes.
func vtr(body ...byte) []byte {
	return append([]byte("VTR1"), body...)
}

func TestDecoderStrictness(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want string
	}{
		// Head 4 (id 1, no addr) encoded non-minimally as two bytes.
		{"non-minimal varint", vtr(0x84, 0x00, 0x00), "non-minimal"},
		// Valid empty stream followed by a stray byte.
		{"trailing data", vtr(0x00, 0x7f), "trailing data"},
		// id+1 == 0: the reserved half of the sentinel space.
		{"header one", vtr(0x01, 0x00, 0x00), "out of range"},
		// Address delta that lands on the reserved NoAddr sentinel.
		{"reserved address", vtr(0x03, 0x01, 0x00), "reserved"},
		// uvarint wider than 64 bits.
		{"varint overflow", vtr(0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f), "overflow"},
		{"bad magic", []byte("NOPE...."), "bad magic"},
		{"truncated magic", []byte("VT"), "magic"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := trace.Decode(bytes.NewReader(tc.data))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Decode(%x) error = %v, want substring %q", tc.data, err, tc.want)
			}
		})
	}
}

func TestDecoderRejectsHugeID(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("VTR1")
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(1)<<33) // id+1 = 2^32
	buf.Write(tmp[:n])
	buf.WriteByte(0)
	if _, err := trace.Decode(&buf); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("want ID-out-of-range error, got %v", err)
	}
}

func TestDecoderReservedAddrError(t *testing.T) {
	_, err := trace.Decode(bytes.NewReader(vtr(0x03, 0x01, 0x00)))
	if !errors.Is(err, trace.ErrReservedAddr) {
		t.Fatalf("want ErrReservedAddr, got %v", err)
	}
}

// scanAll drains a RegionScanner over the given source.
func scanAll(t *testing.T, tr *trace.Trace, loopID int, src trace.EventSource) []*trace.Trace {
	t.Helper()
	sc := trace.NewRegionScanner(tr.Module, loopID, src)
	var out []*trace.Trace
	for {
		sub, err := sc.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, sub)
	}
}

// checkScannerParity asserts the streaming scanner yields exactly the
// regions Trace.Regions finds, with identical event content, both from an
// in-memory source and through a full encode/decode cycle.
func checkScannerParity(t *testing.T, tr *trace.Trace, loopID int) {
	t.Helper()
	want := tr.Regions(loopID)

	var buf bytes.Buffer
	if err := trace.Encode(&buf, tr.Events); err != nil {
		t.Fatal(err)
	}
	sources := map[string]trace.EventSource{
		"slice":   &trace.SliceSource{Events: tr.Events},
		"decoder": trace.NewDecoder(bytes.NewReader(buf.Bytes())),
	}
	for name, src := range sources {
		got := scanAll(t, tr, loopID, src)
		if len(got) != len(want) {
			t.Fatalf("%s: scanner yielded %d regions, Regions found %d", name, len(got), len(want))
		}
		for i, sub := range got {
			ref := tr.RegionEvents(want[i])
			if len(sub.Events) != len(ref) {
				t.Fatalf("%s: region %d has %d events, want %d", name, i, len(sub.Events), len(ref))
			}
			for j := range ref {
				if sub.Events[j] != ref[j] {
					t.Fatalf("%s: region %d event %d = %+v, want %+v", name, i, j, sub.Events[j], ref[j])
				}
			}
			if sub.Module != tr.Module {
				t.Fatalf("%s: region %d does not share the module", name, i)
			}
		}
	}
}

func TestRegionScannerParity(t *testing.T) {
	programs := map[string]string{
		"simple": `
double g;
void main() {
  int i;
  for (i = 0; i < 3; i++) { g = g + 1.0; }
}
`,
		"nested": `
double g;
void main() {
  int i; int j;
  for (i = 0; i < 3; i++) {
    for (j = 0; j < 2; j++) { g = g + 1.0; }
  }
}
`,
		"callee": `
double g;
void work() {
  int j;
  for (j = 0; j < 2; j++) { g = g + 1.0; }
}
void main() {
  int i;
  for (i = 0; i < 3; i++) { work(); }
}
`,
		"early-return": `
double g;
int find(int x) {
  int i;
  for (i = 0; i < 10; i++) {
    if (i == x) { return i; }
    g = g + 1.0;
  }
  return 0 - 1;
}
void main() { printi(find(4)); }
`,
		"zero-iteration": `
double g;
void main() {
  int i;
  for (i = 0; i < 0; i++) { g = g + 1.0; }
}
`,
	}
	for name, src := range programs {
		t.Run(name, func(t *testing.T) {
			tr := traceFor(t, src)
			for _, lm := range tr.Module.Loops {
				checkScannerParity(t, tr, lm.ID)
			}
		})
	}
}

// TestRegionScannerBoundedRetention: the scanner's peak event retention
// tracks the size of one region, not the number of regions — the
// bounded-memory property the streaming pipeline relies on.
func TestRegionScannerBoundedRetention(t *testing.T) {
	program := func(reps int) string {
		return fmt.Sprintf(`
double a[16];
void main() {
  int t; int i;
  for (t = 0; t < %d; t++) {
    for (i = 1; i < 15; i++) { a[i] = a[i-1] * 0.5 + 1.0; }
  }
}
`, reps)
	}
	peak := func(reps int) (retained, total int) {
		tr := traceFor(t, program(reps))
		inner := tr.Module.LoopByLine(6)
		if inner == nil {
			t.Fatal("no inner loop on line 6")
		}
		sc := trace.NewRegionScanner(tr.Module, inner.ID, &trace.SliceSource{Events: tr.Events})
		for {
			if _, err := sc.Next(); err != nil {
				if err == io.EOF {
					break
				}
				t.Fatal(err)
			}
		}
		return sc.MaxRetained(), tr.Len()
	}
	shortPeak, shortLen := peak(2)
	longPeak, longLen := peak(64)
	if longLen <= 8*shortLen {
		t.Fatalf("test setup: long trace (%d events) not much longer than short (%d)", longLen, shortLen)
	}
	if longPeak != shortPeak {
		t.Fatalf("peak retention grew with trace length: %d events (2 regions) vs %d events (64 regions)",
			shortPeak, longPeak)
	}
}

func TestRegionScannerRejectsForeignID(t *testing.T) {
	tr := traceFor(t, `
double g;
void main() {
  int i;
  for (i = 0; i < 3; i++) { g = g + 1.0; }
}
`)
	bad := append([]trace.Event{}, tr.Events...)
	bad[len(bad)/2].ID = int32(tr.Module.NumInstrs) + 7
	sc := trace.NewRegionScanner(tr.Module, 0, &trace.SliceSource{Events: bad})
	for {
		_, err := sc.Next()
		if err == io.EOF {
			t.Fatal("scanner accepted out-of-module instruction ID")
		}
		if err != nil {
			if !strings.Contains(err.Error(), "not in module") {
				t.Fatalf("unexpected error: %v", err)
			}
			return
		}
	}
}

// TestRecordMatchesTrace: streaming a program to a VTR1 file and decoding
// it yields exactly the events live instrumentation produces.
func TestRecordMatchesTrace(t *testing.T) {
	src := `
double a[32];
double s;
void main() {
  int i;
  for (i = 0; i < 32; i++) { a[i] = 0.5 * i; }
  for (i = 1; i < 32; i++) { s = s + a[i] * a[i-1]; }
  print(s);
}
`
	mod, _, tr, err := pipeline.CompileAndTrace("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res, err := pipeline.Record(mod, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if int64(tr.Len()) != res.Steps {
		t.Fatalf("recorded %d steps, live trace has %d events", res.Steps, tr.Len())
	}
	got, err := trace.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != tr.Len() {
		t.Fatalf("decoded %d events, want %d", len(got), tr.Len())
	}
	for i := range got {
		if got[i] != tr.Events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], tr.Events[i])
		}
	}
}
