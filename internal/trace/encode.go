package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// The on-disk trace format is a compact varint stream:
//
//	magic "VTR1"
//	for each event:
//	    uvarint(id+1)            // 0 is the end-of-stream sentinel
//	    if instruction accesses memory (bit from id table is NOT stored;
//	    addresses are self-describing): svarint(addr delta) is stored only
//	    when the event carried an address, flagged in the low bit of the
//	    first field.
//
// Concretely each event is encoded as uvarint((id+1)<<1 | hasAddr), followed
// by svarint(addr - prevAddr) when hasAddr is set. Address deltas are small
// for strided access patterns, so traces stay compact — the same engineering
// concern the paper notes for its two-to-three-orders-of-magnitude tracing
// overhead.

const magic = "VTR1"

// Encode writes the trace's event stream to w in the VTR1 format.
func Encode(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	prevAddr := int64(0)
	for _, ev := range events {
		head := (uint64(ev.ID+1) << 1)
		hasAddr := ev.Addr != 0
		if hasAddr {
			head |= 1
		}
		n := binary.PutUvarint(buf[:], head)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		if hasAddr {
			n = binary.PutVarint(buf[:], ev.Addr-prevAddr)
			if _, err := bw.Write(buf[:n]); err != nil {
				return err
			}
			prevAddr = ev.Addr
		}
	}
	n := binary.PutUvarint(buf[:], 0)
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	return bw.Flush()
}

// Decode reads a VTR1 event stream from r.
func Decode(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(m[:]) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m[:])
	}
	var events []Event
	prevAddr := int64(0)
	for {
		head, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading event header: %w", err)
		}
		if head == 0 {
			return events, nil
		}
		ev := Event{ID: int32(head>>1) - 1}
		if head&1 != 0 {
			d, err := binary.ReadVarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: reading address delta: %w", err)
			}
			prevAddr += d
			ev.Addr = prevAddr
		}
		events = append(events, ev)
	}
}
