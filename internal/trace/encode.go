package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// The on-disk trace format is a compact varint stream:
//
//	magic "VTR1"
//	for each event:
//	    uvarint((id+1)<<1 | hasAddr)
//	    if hasAddr: svarint(addr - prevAddr)
//	uvarint(0)                       // end-of-stream sentinel
//
// hasAddr is set exactly when the event carries a memory address (loads and
// stores); register and control-flow events store no address at all, so a
// genuine access to byte address 0 is representable and survives a round
// trip — in memory such events are distinguished by the NoAddr sentinel, not
// by the address value. prevAddr starts at 0 and is updated only by events
// that carry an address, so address deltas stay small for strided access
// patterns and traces stay compact — the same engineering concern behind the
// paper's two-to-three-orders-of-magnitude tracing overhead.
//
// The encoding is canonical: every valid byte stream is produced by exactly
// one event stream. The decoder enforces this (minimal varints, id range,
// no reserved addresses), which is what makes the fuzzed round-trip property
// — decode then re-encode is the identity on valid inputs — hold byte for
// byte. See DESIGN.md §8 for the full wire-format contract and versioning
// rules.

const magic = "VTR1"

// maxID is the largest encodable instruction ID: id+1 must fit in an int32.
const maxID = math.MaxInt32 - 1

// ErrCorruptTrace is wrapped by every decoding error caused by the input
// bytes themselves — a bad magic, a non-minimal or overflowing varint, an
// out-of-range instruction ID, a reserved address, trailing garbage, or a
// truncated stream. Failures of the underlying reader (an I/O error, not
// malformed bytes) do NOT wrap it, so callers can distinguish "this trace
// file is damaged" from "reading it failed" with errors.Is.
var ErrCorruptTrace = errors.New("corrupt trace")

// ErrReservedAddr reports an address field holding the in-memory NoAddr
// sentinel, which the format reserves (an event without an address simply
// omits the field).
var ErrReservedAddr = fmt.Errorf("trace: address -1 is reserved: %w", ErrCorruptTrace)

// An Encoder writes events to an io.Writer in the VTR1 format as they
// arrive, so a trace can be recorded to disk without ever materializing it.
type Encoder struct {
	bw          *bufio.Writer
	buf         [binary.MaxVarintLen64]byte
	prevAddr    int64
	wroteHeader bool
	closed      bool
	err         error
}

// NewEncoder returns an Encoder writing the VTR1 stream to w. The magic
// header is written on the first Write (or Close, for an empty trace).
func NewEncoder(w io.Writer) *Encoder {
	return &Encoder{bw: bufio.NewWriter(w)}
}

// header writes the magic once.
func (e *Encoder) header() error {
	if e.wroteHeader {
		return nil
	}
	e.wroteHeader = true
	_, err := e.bw.WriteString(magic)
	return err
}

// Write appends one event to the stream. Events with Addr == NoAddr are
// encoded without an address field.
func (e *Encoder) Write(ev Event) error {
	if e.err != nil {
		return e.err
	}
	if e.closed {
		e.err = errors.New("trace: write on closed Encoder")
		return e.err
	}
	if ev.ID < 0 || int64(ev.ID) > maxID {
		e.err = fmt.Errorf("trace: event ID %d out of range", ev.ID)
		return e.err
	}
	if err := e.header(); err != nil {
		e.err = err
		return err
	}
	head := uint64(ev.ID+1) << 1
	if ev.Addr != NoAddr {
		head |= 1
	}
	n := binary.PutUvarint(e.buf[:], head)
	if _, err := e.bw.Write(e.buf[:n]); err != nil {
		e.err = err
		return err
	}
	if ev.Addr != NoAddr {
		n = binary.PutVarint(e.buf[:], ev.Addr-e.prevAddr)
		if _, err := e.bw.Write(e.buf[:n]); err != nil {
			e.err = err
			return err
		}
		e.prevAddr = ev.Addr
	}
	return nil
}

// Close terminates the stream with the end-of-stream sentinel and flushes
// buffered bytes. It does not close the underlying writer.
func (e *Encoder) Close() error {
	if e.err != nil {
		return e.err
	}
	if e.closed {
		return nil
	}
	e.closed = true
	if err := e.header(); err != nil {
		e.err = err
		return err
	}
	if err := e.bw.WriteByte(0); err != nil {
		e.err = err
		return err
	}
	if err := e.bw.Flush(); err != nil {
		e.err = err
		return err
	}
	return nil
}

// Encode writes the trace's event stream to w in the VTR1 format.
func Encode(w io.Writer, events []Event) error {
	e := NewEncoder(w)
	for _, ev := range events {
		if err := e.Write(ev); err != nil {
			return err
		}
	}
	return e.Close()
}

// appendEvent appends ev's canonical encoding (uvarint head, optional
// zigzag address delta) to dst and returns the grown slice plus the updated
// previous-address chain value. The VTR1 Encoder and the VTR2 block writer
// share this, so both formats carry byte-identical per-event encodings.
func appendEvent(dst []byte, ev Event, prevAddr int64) ([]byte, int64, error) {
	if ev.ID < 0 || int64(ev.ID) > maxID {
		return dst, prevAddr, fmt.Errorf("trace: event ID %d out of range", ev.ID)
	}
	var tmp [binary.MaxVarintLen64]byte
	head := uint64(ev.ID+1) << 1
	if ev.Addr != NoAddr {
		head |= 1
	}
	n := binary.PutUvarint(tmp[:], head)
	dst = append(dst, tmp[:n]...)
	if ev.Addr != NoAddr {
		n = binary.PutVarint(tmp[:], ev.Addr-prevAddr)
		dst = append(dst, tmp[:n]...)
		prevAddr = ev.Addr
	}
	return dst, prevAddr, nil
}

// A Decoder reads events one at a time from an io.Reader without
// materializing the stream: peak memory is constant in the trace length.
//
// The decoder is strict: it rejects non-minimal varints, out-of-range
// instruction IDs, and reserved address values, so every successfully
// decoded stream re-encodes byte-identically.
type Decoder struct {
	cur      byteCursor
	prevAddr int64
	started  bool
	done     bool
	err      error
}

// NewDecoder returns a Decoder reading a VTR1 stream from r. The magic
// header is checked on the first Next call.
func NewDecoder(r io.Reader) *Decoder {
	br, ok := r.(io.ByteReader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &Decoder{cur: byteCursor{br: br}}
}

// Offset returns the number of stream bytes consumed so far; after a
// decoding error it names the corrupted position for diagnostics.
func (d *Decoder) Offset() int64 { return d.cur.off }

// A byteCursor reads bytes from an io.ByteReader while tracking the count
// consumed, enforcing the canonical (minimal) varint rules the format
// requires. The VTR1 stream decoder and the VTR2 block/footer decoders all
// read through one of these, so strictness is defined in exactly one place.
type byteCursor struct {
	br  io.ByteReader
	off int64
}

// readByte reads one byte, keeping the consumed-byte count current.
func (c *byteCursor) readByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err == nil {
		c.off++
	}
	return b, err
}

// readUvarint reads a canonically (minimally) encoded uvarint.
func (c *byteCursor) readUvarint() (uint64, error) {
	var x uint64
	var s uint
	for i := 0; ; i++ {
		b, err := c.readByte()
		if err != nil {
			if err == io.EOF && i > 0 {
				err = io.ErrUnexpectedEOF
			}
			return 0, err
		}
		if i == binary.MaxVarintLen64-1 && b > 1 {
			return 0, fmt.Errorf("varint overflows 64 bits: %w", ErrCorruptTrace)
		}
		if b < 0x80 {
			if i > 0 && b == 0 {
				return 0, fmt.Errorf("non-minimal varint: %w", ErrCorruptTrace)
			}
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
}

// readVarint reads a canonically encoded zigzag varint.
func (c *byteCursor) readVarint() (int64, error) {
	ux, err := c.readUvarint()
	if err != nil {
		return 0, err
	}
	x := int64(ux >> 1)
	if ux&1 != 0 {
		x = ^x
	}
	return x, nil
}

// decodeEventTail finishes decoding one event whose head uvarint has
// already been read, consuming the address delta when present and advancing
// the previous-address chain. On failure the returned context string names
// the decoding phase ("reading event header" for a bad instruction ID,
// "reading address delta" otherwise), matching the VTR1 diagnostics. Shared
// by the VTR1 stream decoder and the VTR2 block decoder.
func decodeEventTail(cur *byteCursor, head uint64, prevAddr *int64) (Event, string, error) {
	id := head >> 1
	if id == 0 || id > maxID+1 {
		return Event{}, "reading event header", fmt.Errorf("instruction ID %d out of range: %w", int64(id)-1, ErrCorruptTrace)
	}
	ev := Event{ID: int32(id) - 1, Addr: NoAddr}
	if head&1 != 0 {
		delta, err := cur.readVarint()
		if err != nil {
			return Event{}, "reading address delta", err
		}
		addr := *prevAddr + delta
		if addr == NoAddr {
			return Event{}, "reading address delta", ErrReservedAddr
		}
		*prevAddr = addr
		ev.Addr = addr
	}
	return ev, "", nil
}

// An OffsetError is the typed form of every Decoder failure: it carries the
// byte offset where decoding stopped so reporting layers can localize the
// damage programmatically (errors.As) instead of parsing message text. Its
// rendered message is byte-for-byte the historical format, so diagnostics
// that grep for "byte offset" keep working.
type OffsetError struct {
	Context string // what the decoder was reading ("reading magic", ...)
	Offset  int64  // bytes consumed when decoding stopped
	Err     error  // underlying cause; wraps ErrCorruptTrace for bad bytes
}

func (e *OffsetError) Error() string {
	return fmt.Sprintf("trace: %s at byte offset %d: %v", e.Context, e.Offset, e.Err)
}

func (e *OffsetError) Unwrap() error { return e.Err }

// CorruptOffset extracts the decoder byte offset from an error chain. It
// reports ok=false when no OffsetError is present (e.g. a scan-level failure
// not caused by the byte stream).
func CorruptOffset(err error) (int64, bool) {
	var oe *OffsetError
	if errors.As(err, &oe) {
		return oe.Offset, true
	}
	return 0, false
}

// fail records and returns a decoding error, wrapping it with context and
// the byte offset where decoding stopped. Truncation (an unexpected EOF) is
// classified as corruption; genuine reader failures pass through without
// the ErrCorruptTrace mark.
func (d *Decoder) fail(context string, err error) (Event, error) {
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	if errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrCorruptTrace) {
		err = fmt.Errorf("%w: %w", err, ErrCorruptTrace)
	}
	d.err = &OffsetError{Context: context, Offset: d.cur.off, Err: err}
	return Event{}, d.err
}

// Next returns the next event in the stream. It returns io.EOF after the
// end-of-stream sentinel; any other error means the stream is malformed or
// the underlying reader failed.
func (d *Decoder) Next() (Event, error) {
	if d.err != nil {
		return Event{}, d.err
	}
	if d.done {
		return Event{}, io.EOF
	}
	if !d.started {
		d.started = true
		var m [4]byte
		for i := range m {
			b, err := d.cur.readByte()
			if err != nil {
				return d.fail("reading magic", err)
			}
			m[i] = b
		}
		if string(m[:]) != magic {
			return d.fail("reading magic", fmt.Errorf("bad magic %q: %w", m[:], ErrCorruptTrace))
		}
	}
	head, err := d.cur.readUvarint()
	if err != nil {
		return d.fail("reading event header", err)
	}
	if head == 0 {
		d.done = true
		return Event{}, io.EOF
	}
	ev, context, err := decodeEventTail(&d.cur, head, &d.prevAddr)
	if err != nil {
		return d.fail(context, err)
	}
	return ev, nil
}

// Decode reads a complete VTR1 event stream from r. It is strict about
// framing: data after the end-of-stream sentinel is an error, so a decoded
// stream always re-encodes to the exact input bytes.
func Decode(r io.Reader) ([]Event, error) {
	d := NewDecoder(r)
	var events []Event
	for {
		ev, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		events = append(events, ev)
	}
	if _, err := d.cur.br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("trace: trailing data after end-of-stream sentinel at byte offset %d: %w", d.cur.off, ErrCorruptTrace)
	}
	return events, nil
}

// DecodeBytes decodes a complete in-memory VTR1 stream.
func DecodeBytes(data []byte) ([]Event, error) {
	return Decode(bytes.NewReader(data))
}
