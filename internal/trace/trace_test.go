package trace_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/example/vectrace/internal/ir"
	"github.com/example/vectrace/internal/pipeline"
	"github.com/example/vectrace/internal/trace"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	events := []trace.Event{
		{ID: 0},
		{ID: 1, Addr: 0x10000},
		{ID: 2, Addr: 0x10008},
		{ID: 1, Addr: 0x10010},
		{ID: 5},
		{ID: 3, Addr: 0x20000},
		{ID: 3, Addr: 0x10000}, // negative delta
	}
	var buf bytes.Buffer
	if err := trace.Encode(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := trace.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], events[i])
		}
	}
}

func TestEncodeDecodeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := trace.Encode(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := trace.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("decoded %d events from empty trace", len(got))
	}
}

func TestDecodeBadMagic(t *testing.T) {
	_, err := trace.Decode(strings.NewReader("NOPE...."))
	if err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("want bad-magic error, got %v", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	events := []trace.Event{{ID: 1, Addr: 0x10000}, {ID: 2, Addr: 0x10008}}
	var buf bytes.Buffer
	if err := trace.Encode(&buf, events); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full)-1; cut++ {
		if _, err := trace.Decode(bytes.NewReader(full[:cut])); err == nil {
			// A short prefix can only be valid if it happens to end on the
			// sentinel — it cannot, since the sentinel is the final byte.
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

// TestRoundTripProperty: invariant 5 from DESIGN.md — encode→decode is the
// identity on arbitrary event streams (with valid IDs and addresses that
// are either 0 or in the plausible memory range).
func TestRoundTripProperty(t *testing.T) {
	check := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		events := make([]trace.Event, int(n))
		for i := range events {
			events[i].ID = rng.Int31n(1 << 20)
			if rng.Intn(2) == 0 {
				events[i].Addr = 0x10000 + rng.Int63n(1<<32)
			}
		}
		var buf bytes.Buffer
		if err := trace.Encode(&buf, events); err != nil {
			return false
		}
		got, err := trace.Decode(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(events) {
			return false
		}
		for i := range events {
			if got[i] != events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDecodeGarbageNeverPanics feeds random byte soup to the decoder; it
// must return an error or a valid slice, never panic.
func TestDecodeGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		n := rng.Intn(64)
		buf := make([]byte, 4+n)
		copy(buf, "VTR1")
		rng.Read(buf[4:])
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("decoder panicked on input %x: %v", buf, r)
				}
			}()
			_, _ = trace.Decode(bytes.NewReader(buf))
		}()
	}
}

func TestCompactness(t *testing.T) {
	// Strided access must encode in very few bytes per event.
	events := make([]trace.Event, 10000)
	for i := range events {
		events[i] = trace.Event{ID: 7, Addr: 0x10000 + int64(i)*8}
	}
	var buf bytes.Buffer
	if err := trace.Encode(&buf, events); err != nil {
		t.Fatal(err)
	}
	perEvent := float64(buf.Len()) / float64(len(events))
	if perEvent > 4 {
		t.Errorf("strided trace uses %.1f bytes/event, want <= 4", perEvent)
	}
}

// traceFor builds a full-program trace for a source string.
func traceFor(t *testing.T, src string) *trace.Trace {
	t.Helper()
	_, _, tr, err := pipeline.CompileAndTrace("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRegionsSimpleLoop(t *testing.T) {
	tr := traceFor(t, `
double g;
void main() {
  int i;
  for (i = 0; i < 3; i++) { g = g + 1.0; }
}
`)
	regions := tr.Regions(0)
	if len(regions) != 1 {
		t.Fatalf("regions = %d, want 1", len(regions))
	}
	r := regions[0]
	if r.Start <= 0 || r.End <= r.Start {
		t.Fatalf("bad region bounds: %+v", r)
	}
	// The region must exclude the loop.begin/loop.end markers themselves
	// but contain the loop's body instructions.
	for _, ev := range tr.RegionEvents(r) {
		in := tr.Module.InstrAt(ev.ID)
		if in.Op == ir.OpLoopBegin && in.Loop == 0 {
			t.Fatal("region contains its own loop.begin")
		}
	}
}

func TestRegionsNested(t *testing.T) {
	tr := traceFor(t, `
double g;
void main() {
  int i; int j;
  for (i = 0; i < 3; i++) {
    for (j = 0; j < 2; j++) { g = g + 1.0; }
  }
}
`)
	outer := tr.Regions(0)
	inner := tr.Regions(1)
	if len(outer) != 1 {
		t.Fatalf("outer regions = %d, want 1", len(outer))
	}
	if len(inner) != 3 {
		t.Fatalf("inner regions = %d, want 3 (one per outer iteration)", len(inner))
	}
	// Inner regions nest within the outer region.
	for _, r := range inner {
		if r.Start < outer[0].Start || r.End > outer[0].End {
			t.Fatalf("inner region %+v escapes outer %+v", r, outer[0])
		}
	}
	// Inner regions are disjoint and ordered.
	for i := 1; i < len(inner); i++ {
		if inner[i].Start < inner[i-1].End {
			t.Fatal("inner regions overlap")
		}
	}
}

func TestRegionsZeroIterationLoop(t *testing.T) {
	tr := traceFor(t, `
double g;
void main() {
  int i;
  for (i = 0; i < 0; i++) { g = g + 1.0; }
}
`)
	regions := tr.Regions(0)
	if len(regions) != 1 {
		t.Fatalf("regions = %d, want 1 (entered and immediately exited)", len(regions))
	}
}

func TestRegionsLoopInCallee(t *testing.T) {
	tr := traceFor(t, `
double g;
void work() {
  int j;
  for (j = 0; j < 2; j++) { g = g + 1.0; }
}
void main() {
  int i;
  for (i = 0; i < 3; i++) { work(); }
}
`)
	// work's loop is parsed first (ID 0), main's second (ID 1).
	workRegions := tr.Regions(0)
	mainRegions := tr.Regions(1)
	if len(workRegions) != 3 {
		t.Fatalf("work loop regions = %d, want 3", len(workRegions))
	}
	if len(mainRegions) != 1 {
		t.Fatalf("main loop regions = %d, want 1", len(mainRegions))
	}
}

func TestRegionsEarlyReturn(t *testing.T) {
	tr := traceFor(t, `
double g;
int find(int x) {
  int i;
  for (i = 0; i < 10; i++) {
    if (i == x) { return i; }
    g = g + 1.0;
  }
  return 0 - 1;
}
void main() { printi(find(4)); }
`)
	regions := tr.Regions(0)
	if len(regions) != 1 {
		t.Fatalf("regions = %d, want 1 (closed by the early return)", len(regions))
	}
	if regions[0].End <= regions[0].Start {
		t.Fatal("early-returned region is empty")
	}
}

func TestSliceSharesModule(t *testing.T) {
	tr := traceFor(t, `
double g;
void main() {
  int i;
  for (i = 0; i < 3; i++) { g = g + 1.0; }
}
`)
	r := tr.Regions(0)[0]
	sl := tr.Slice(r)
	if sl.Module != tr.Module {
		t.Error("slice should share the module")
	}
	if sl.Len() != r.End-r.Start {
		t.Errorf("slice length = %d, want %d", sl.Len(), r.End-r.Start)
	}
}

func TestAppend(t *testing.T) {
	tr := &trace.Trace{}
	tr.Append(3, 0x10000)
	tr.Append(4, 0)
	if tr.Len() != 2 || tr.Events[0].ID != 3 || tr.Events[1].Addr != 0 {
		t.Errorf("append wrong: %+v", tr.Events)
	}
}
