package trace

// The VTR2 container wraps the canonical VTR1 event encoding in a seekable,
// compressed, indexed file format — the uacs-lynx "decoupled writer/reader"
// architecture applied to this pipeline's traces. Where VTR1 is a single
// varint stream that must be decoded from byte 0, VTR2 frames the same
// event encoding into independently decodable blocks (the per-block
// address-delta chain restarts at 0) and appends a footer holding a block
// index and a region index, so a reader can jump straight to any dynamic
// loop region and scan workers can decode disjoint block ranges in
// parallel. See DESIGN.md §13 for the full wire-format contract.
//
// Layout:
//
//	header    magic "VTR2", codec byte (0 = none, 1 = flate)
//	blocks    per block: uvarint(storedLen<<1 | compressed),
//	          uvarint(rawLen), uvarint(eventCount),
//	          u32le crc32(stored payload), payload bytes
//	sentinel  uvarint 0 (end of blocks)
//	footer    uvarint(numBlocks), block entries mirroring the frame headers;
//	          uvarint(numRegions), per region uvarint loopID, uvarint start,
//	          uvarint(end-start), uvarint depth; u32le crc32(footer)
//	trailer   u32le footerLen, end magic "2RTV"
//
// The frame headers and the footer's block entries are redundant on
// purpose: a reader with the footer verifies every frame against the index
// (a lying footer is corruption, named by block), and a reader without the
// footer — a truncated file — walks the frames sequentially and salvages
// every intact block before the damage (BlockSource).

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"github.com/example/vectrace/internal/ir"
)

const (
	magic2    = "VTR2"
	magic2End = "2RTV"

	codecNone  byte = 0
	codecFlate byte = 1

	// headerLen is the fixed prefix: magic plus the codec byte. trailerLen
	// is the fixed tail: u32le footer length plus the end magic.
	headerLen  = 5
	trailerLen = 8

	// DefaultBlockBytes is the target uncompressed payload size per block —
	// small enough that a region seek decodes little beyond its range,
	// large enough that flate and the per-block frame overhead amortize.
	DefaultBlockBytes = 64 << 10

	// maxBlockRawBytes caps a block's uncompressed size. The writer clamps
	// its block target below it; decoders reject larger claims, bounding
	// what a lying frame or footer can make a reader allocate.
	maxBlockRawBytes = 1 << 26
)

// ContainerOptions configures the VTR2 writer.
type ContainerOptions struct {
	// BlockBytes is the target uncompressed payload size per block; a block
	// is sealed once its payload reaches it. 0 means DefaultBlockBytes.
	BlockBytes int
	// Codec selects the per-file compressor: "flate" (the default) deflates
	// each block and keeps the compressed form when it is smaller; "none"
	// stores every block raw.
	Codec string
}

// codecByte resolves the option string to the on-disk codec identifier.
func (o ContainerOptions) codecByte() (byte, error) {
	switch o.Codec {
	case "", "flate":
		return codecFlate, nil
	case "none":
		return codecNone, nil
	}
	return 0, fmt.Errorf("trace: unknown container codec %q (want \"flate\" or \"none\")", o.Codec)
}

// blockBytes resolves and clamps the block-size target.
func (o ContainerOptions) blockBytes() int {
	b := o.BlockBytes
	if b <= 0 {
		b = DefaultBlockBytes
	}
	if b < 64 {
		b = 64
	}
	if b > maxBlockRawBytes-64 {
		b = maxBlockRawBytes - 64
	}
	return b
}

// CodecName reports the canonical name of an on-disk codec byte.
func codecName(c byte) string {
	if c == codecFlate {
		return "flate"
	}
	return "none"
}

// IndexRegion is one dynamic loop region recorded in a VTR2 footer index:
// the event range [Start, End) of one execution of loop LoopID, marker
// events excluded — exactly the ranges Trace.Regions computes — plus the
// call depth at loop entry. Entries are stored in global close order, so
// filtering by loop yields regions in the order the sequential scanner
// emits them, and a region's position in the filtered slice is the index
// RegionReport carries.
type IndexRegion struct {
	LoopID int
	Start  int
	End    int
	Depth  int
}

// Events returns the region's dynamic event count.
func (r IndexRegion) Events() int { return r.End - r.Start }

// allTracker is the all-loops generalization of regionTracker: the
// container index is loop-agnostic (the target loop is chosen at read
// time), so the writer records every loop's regions. Close semantics are
// identical to regionTracker's, including call-stack-aware closing on early
// returns, which is what makes the index agree with Trace.Regions for every
// loop.
type allTracker struct {
	stack  []openRegion
	depth  int
	closed []IndexRegion // scratch, reused across steps
}

// step feeds the event at absolute index i and returns the regions it
// closes, in close order. The returned slice is reused by the next call.
func (t *allTracker) step(i int, in *ir.Instr) []IndexRegion {
	t.closed = t.closed[:0]
	switch in.Op {
	case ir.OpLoopBegin:
		t.stack = append(t.stack, openRegion{loopID: int(in.Loop), start: i + 1, depth: t.depth})
	case ir.OpLoopEnd:
		if len(t.stack) > 0 {
			o := t.stack[len(t.stack)-1]
			t.stack = t.stack[:len(t.stack)-1]
			t.closed = append(t.closed, IndexRegion{LoopID: o.loopID, Start: o.start, End: i, Depth: o.depth})
		}
	case ir.OpCall:
		t.depth++
	case ir.OpRet:
		t.closeTo(t.depth, i)
		if t.depth > 0 {
			t.depth--
		}
	}
	return t.closed
}

// finish closes every still-open region at end-of-trace index n.
func (t *allTracker) finish(n int) []IndexRegion {
	t.closed = t.closed[:0]
	t.closeTo(0, n)
	return t.closed
}

// closeTo pops stack entries at or above minDepth, recording their regions.
func (t *allTracker) closeTo(minDepth, endIdx int) {
	for len(t.stack) > 0 && t.stack[len(t.stack)-1].depth >= minDepth {
		o := t.stack[len(t.stack)-1]
		t.stack = t.stack[:len(t.stack)-1]
		t.closed = append(t.closed, IndexRegion{LoopID: o.loopID, Start: o.start, End: endIdx, Depth: o.depth})
	}
}

// blockMeta is one block's index entry, shared between the writer's footer
// and the reader's parsed view.
type blockMeta struct {
	stored     int    // payload bytes as stored on disk
	raw        int    // payload bytes after decompression
	events     int    // events encoded in the block
	crc        uint32 // crc32 (IEEE) of the stored payload
	compressed bool
}

// uvlen returns the encoded length of x as a uvarint.
func uvlen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// frameHeaderLen returns the on-disk size of a block's frame header.
func (b blockMeta) frameHeaderLen() int {
	return uvlen(b.storedWord()) + uvlen(uint64(b.raw)) + uvlen(uint64(b.events)) + 4
}

// storedWord packs the stored length and the compressed bit.
func (b blockMeta) storedWord() uint64 {
	w := uint64(b.stored) << 1
	if b.compressed {
		w |= 1
	}
	return w
}

// A ContainerWriter streams events into the VTR2 container format. Unlike
// the VTR1 Encoder it needs the module: region boundaries are tracked as
// events arrive (the same state machine the sequential scanner replays) so
// the footer can map any loop region to its block range without re-reading
// the stream. Memory is bounded by one uncompressed block plus the index —
// O(block size + blocks + regions) — independent of the trace length.
type ContainerWriter struct {
	bw   *bufio.Writer
	mod  *ir.Module
	tk   allTracker
	blockBytes int
	codec      byte

	raw         []byte // current block's uncompressed payload
	blockEvents int
	prevAddr    int64 // per-block address-delta chain (restarts at 0)
	idx         int   // events written so far

	blocks  []blockMeta
	regions []IndexRegion

	scratch bytes.Buffer // flate destination, reused across blocks
	fw      *flate.Writer
	varbuf  [binary.MaxVarintLen64]byte

	wroteHeader bool
	closed      bool
	err         error
}

// NewContainerWriter returns a writer streaming the VTR2 container to w.
// The header is written on the first Write (or Close, for an empty trace).
func NewContainerWriter(w io.Writer, mod *ir.Module, opts ContainerOptions) (*ContainerWriter, error) {
	codec, err := opts.codecByte()
	if err != nil {
		return nil, err
	}
	return &ContainerWriter{
		bw:         bufio.NewWriter(w),
		mod:        mod,
		blockBytes: opts.blockBytes(),
		codec:      codec,
	}, nil
}

// header writes the magic and codec byte once.
func (cw *ContainerWriter) header() error {
	if cw.wroteHeader {
		return nil
	}
	cw.wroteHeader = true
	if _, err := cw.bw.WriteString(magic2); err != nil {
		return err
	}
	return cw.bw.WriteByte(cw.codec)
}

// fail latches a writer error.
func (cw *ContainerWriter) fail(err error) error {
	cw.err = err
	return err
}

// Write appends one event to the container, tracking region boundaries.
func (cw *ContainerWriter) Write(ev Event) error {
	if cw.err != nil {
		return cw.err
	}
	if cw.closed {
		return cw.fail(fmt.Errorf("trace: write on closed ContainerWriter"))
	}
	if ev.ID < 0 || int(ev.ID) >= cw.mod.NumInstrs {
		return cw.fail(fmt.Errorf("trace: event ID %d not in module (%d instructions)", ev.ID, cw.mod.NumInstrs))
	}
	if err := cw.header(); err != nil {
		return cw.fail(err)
	}
	cw.regions = append(cw.regions, cw.tk.step(cw.idx, cw.mod.InstrAt(ev.ID))...)
	var err error
	cw.raw, cw.prevAddr, err = appendEvent(cw.raw, ev, cw.prevAddr)
	if err != nil {
		return cw.fail(err)
	}
	cw.blockEvents++
	cw.idx++
	if len(cw.raw) >= cw.blockBytes {
		if err := cw.flushBlock(); err != nil {
			return cw.fail(err)
		}
	}
	return nil
}

// flushBlock seals the current block: compress when that shrinks it, frame
// it, and reset the per-block state (including the address-delta chain, so
// every block decodes independently).
func (cw *ContainerWriter) flushBlock() error {
	if cw.blockEvents == 0 {
		return nil
	}
	stored := cw.raw
	compressed := false
	if cw.codec == codecFlate {
		cw.scratch.Reset()
		if cw.fw == nil {
			fw, err := flate.NewWriter(&cw.scratch, flate.BestSpeed)
			if err != nil {
				return err
			}
			cw.fw = fw
		} else {
			cw.fw.Reset(&cw.scratch)
		}
		if _, err := cw.fw.Write(cw.raw); err != nil {
			return err
		}
		if err := cw.fw.Close(); err != nil {
			return err
		}
		if cw.scratch.Len() < len(cw.raw) {
			stored = cw.scratch.Bytes()
			compressed = true
		}
	}
	meta := blockMeta{
		stored:     len(stored),
		raw:        len(cw.raw),
		events:     cw.blockEvents,
		crc:        crc32.ChecksumIEEE(stored),
		compressed: compressed,
	}
	if err := cw.writeBlockEntry(cw.bw, meta); err != nil {
		return err
	}
	if _, err := cw.bw.Write(stored); err != nil {
		return err
	}
	cw.blocks = append(cw.blocks, meta)
	cw.raw = cw.raw[:0]
	cw.blockEvents = 0
	cw.prevAddr = 0
	return nil
}

// writeBlockEntry writes a block's header fields (the same layout is used
// for the on-wire frame header and the footer's block index entries).
func (cw *ContainerWriter) writeBlockEntry(w io.Writer, b blockMeta) error {
	for _, v := range []uint64{b.storedWord(), uint64(b.raw), uint64(b.events)} {
		n := binary.PutUvarint(cw.varbuf[:], v)
		if _, err := w.Write(cw.varbuf[:n]); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint32(cw.varbuf[:4], b.crc)
	_, err := w.Write(cw.varbuf[:4])
	return err
}

// Close seals the last block, writes the end-of-blocks sentinel, the footer
// index, and the trailer, then flushes. It does not close the underlying
// writer.
func (cw *ContainerWriter) Close() error {
	if cw.err != nil {
		return cw.err
	}
	if cw.closed {
		return nil
	}
	cw.closed = true
	if err := cw.header(); err != nil {
		return cw.fail(err)
	}
	if err := cw.flushBlock(); err != nil {
		return cw.fail(err)
	}
	cw.regions = append(cw.regions, cw.tk.finish(cw.idx)...)
	if err := cw.bw.WriteByte(0); err != nil { // end-of-blocks sentinel
		return cw.fail(err)
	}
	footer, err := cw.encodeFooter()
	if err != nil {
		return cw.fail(err)
	}
	if _, err := cw.bw.Write(footer); err != nil {
		return cw.fail(err)
	}
	var tr [trailerLen]byte
	binary.LittleEndian.PutUint32(tr[:4], uint32(len(footer)))
	copy(tr[4:], magic2End)
	if _, err := cw.bw.Write(tr[:]); err != nil {
		return cw.fail(err)
	}
	if err := cw.bw.Flush(); err != nil {
		return cw.fail(err)
	}
	return nil
}

// encodeFooter serializes the block and region indexes plus their checksum.
func (cw *ContainerWriter) encodeFooter() ([]byte, error) {
	var buf bytes.Buffer
	putUv := func(v uint64) {
		n := binary.PutUvarint(cw.varbuf[:], v)
		buf.Write(cw.varbuf[:n])
	}
	putUv(uint64(len(cw.blocks)))
	for _, b := range cw.blocks {
		if err := cw.writeBlockEntry(&buf, b); err != nil {
			return nil, err
		}
	}
	putUv(uint64(len(cw.regions)))
	for _, r := range cw.regions {
		putUv(uint64(r.LoopID))
		putUv(uint64(r.Start))
		putUv(uint64(r.End - r.Start))
		putUv(uint64(r.Depth))
	}
	crc := crc32.ChecksumIEEE(buf.Bytes())
	binary.LittleEndian.PutUint32(cw.varbuf[:4], crc)
	buf.Write(cw.varbuf[:4])
	if buf.Len() > math.MaxUint32 {
		return nil, fmt.Errorf("trace: container footer exceeds 4 GiB")
	}
	return buf.Bytes(), nil
}

// EncodeContainer writes events to w in the VTR2 container format — the
// one-shot counterpart of ContainerWriter, used to transcode decoded VTR1
// traces.
func EncodeContainer(w io.Writer, mod *ir.Module, events []Event, opts ContainerOptions) error {
	cw, err := NewContainerWriter(w, mod, opts)
	if err != nil {
		return err
	}
	for _, ev := range events {
		if err := cw.Write(ev); err != nil {
			return err
		}
	}
	return cw.Close()
}
