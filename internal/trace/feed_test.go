package trace_test

// Differential tests of the push-based RegionFeed against the pull-based
// RegionScanner: same programs, same loops, same regions in the same close
// order with the same events — the feed just never buffers them itself.

import (
	"context"
	"errors"
	"io"
	"testing"

	"github.com/example/vectrace/internal/trace"
)

// recSink buffers one region's events — the test double standing in for
// the one-pass kernel.
type recSink struct {
	events  []trace.Event
	index   int
	closed  bool
	aborted bool
}

func (s *recSink) Event(ev trace.Event) { s.events = append(s.events, ev) }
func (s *recSink) Close(index int)      { s.index, s.closed = index, true }
func (s *recSink) Abort()               { s.aborted = true }

// feedAll drives src through FeedRegions, collecting every sink opened.
func feedAll(ctx context.Context, tr *trace.Trace, loopID int, src trace.EventSource) ([]*recSink, int, error) {
	var sinks []*recSink
	n, err := trace.FeedRegions(ctx, tr.Module, loopID, src, func() trace.RegionSink {
		s := &recSink{index: -1}
		sinks = append(sinks, s)
		return s
	})
	return sinks, n, err
}

func TestRegionFeedMatchesScanner(t *testing.T) {
	programs := map[string]string{
		"simple": `
double g;
void main() {
  int i;
  for (i = 0; i < 3; i++) { g = g + 1.0; }
}
`,
		"nested-loops": `
double g;
void main() {
  int i; int j;
  for (i = 0; i < 3; i++) {
    for (j = 0; j < 2; j++) { g = g + 1.0; }
  }
}
`,
		"callee-loop": `
double g;
void work() {
  int j;
  for (j = 0; j < 2; j++) { g = g + 1.0; }
}
void main() {
  int i;
  for (i = 0; i < 3; i++) { work(); }
}
`,
		"early-return": `
double g;
int find(int x) {
  int i;
  for (i = 0; i < 10; i++) {
    if (i == x) { return i; }
    g = g + 1.0;
  }
  return 0 - 1;
}
void main() { printi(find(4)); }
`,
		"zero-iteration": `
double g;
void main() {
  int i;
  for (i = 0; i < 0; i++) { g = g + 1.0; }
}
`,
	}
	for name, src := range programs {
		t.Run(name, func(t *testing.T) {
			tr := traceFor(t, src)
			for _, lm := range tr.Module.Loops {
				want := tr.Regions(lm.ID)
				sinks, n, err := feedAll(context.Background(), tr, lm.ID, &trace.SliceSource{Events: tr.Events})
				if err != nil {
					t.Fatalf("loop %d: FeedRegions: %v", lm.ID, err)
				}
				if n != len(want) || len(sinks) != len(want) {
					t.Fatalf("loop %d: feed dispatched %d regions over %d sinks, Regions found %d",
						lm.ID, n, len(sinks), len(want))
				}
				// Sinks open in loop-entry order; indices are assigned in
				// close order. Check each sink's events against the region
				// that closed with its index.
				for _, s := range sinks {
					if !s.closed || s.aborted {
						t.Fatalf("loop %d: sink not cleanly closed: %+v", lm.ID, s)
					}
					ref := tr.RegionEvents(want[s.index])
					if len(s.events) != len(ref) {
						t.Fatalf("loop %d region %d: %d events, want %d", lm.ID, s.index, len(s.events), len(ref))
					}
					for j := range ref {
						if s.events[j] != ref[j] {
							t.Fatalf("loop %d region %d event %d = %+v, want %+v",
								lm.ID, s.index, j, s.events[j], ref[j])
						}
					}
				}
			}
		})
	}
}

// TestRegionFeedCorruptEvent: an out-of-module event aborts open sinks and
// latches an ErrCorruptTrace-wrapped error with the scanner's region/event
// context.
func TestRegionFeedCorruptEvent(t *testing.T) {
	tr := traceFor(t, `
double g;
void main() {
  int i;
  for (i = 0; i < 3; i++) { g = g + 1.0; }
}
`)
	loopID := tr.Module.Loops[0].ID
	// Truncate mid-region and append a foreign ID while the region is open.
	var begin int = -1
	for i, ev := range tr.Events {
		if tr.Module.InstrAt(ev.ID).Op.String() == "loop.begin" {
			begin = i
			break
		}
	}
	if begin < 0 {
		t.Fatal("no loop.begin in trace")
	}
	bad := append(append([]trace.Event{}, tr.Events[:begin+3]...), trace.Event{ID: int32(tr.Module.NumInstrs) + 7})
	sinks, _, err := feedAll(context.Background(), tr, loopID, &trace.SliceSource{Events: bad})
	if !errors.Is(err, trace.ErrCorruptTrace) {
		t.Fatalf("error %v does not wrap ErrCorruptTrace", err)
	}
	if len(sinks) != 1 || !sinks[0].aborted || sinks[0].closed {
		t.Fatalf("open sink not aborted: %+v", sinks)
	}
	// The error latches.
	f := trace.NewRegionFeed(context.Background(), tr.Module, loopID, func() trace.RegionSink { return &recSink{} })
	if perr := f.Push(trace.Event{ID: -1}); perr == nil {
		t.Fatal("Push of negative ID succeeded")
	} else if again := f.Push(tr.Events[0]); again == nil || again.Error() != perr.Error() {
		t.Fatalf("feed error did not latch: %v then %v", perr, again)
	}
}

// TestRegionFeedCancel: a pre-canceled context fails the first Push, before
// any sink is opened, with the scanner's cancellation text.
func TestRegionFeedCancel(t *testing.T) {
	tr := traceFor(t, `
double g;
void main() {
  int i;
  for (i = 0; i < 2; i++) { g = g + 1.0; }
}
`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sinks, n, err := feedAll(ctx, tr, tr.Module.Loops[0].ID, &trace.SliceSource{Events: tr.Events})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n != 0 || len(sinks) != 0 {
		t.Fatalf("canceled feed dispatched %d regions, opened %d sinks", n, len(sinks))
	}
}

// TestRegionFeedSourceError: an upstream source failure (reader error
// mid-stream) aborts open sinks and surfaces through Fail's latched wrap.
func TestRegionFeedSourceError(t *testing.T) {
	tr := traceFor(t, `
double g;
void main() {
  int i;
  for (i = 0; i < 3; i++) { g = g + 1.0; }
}
`)
	loopID := tr.Module.Loops[0].ID
	boom := errors.New("disk on fire")
	src := &failingSource{events: tr.Events, failAt: len(tr.Events) / 2, err: boom}
	sinks, _, err := feedAll(context.Background(), tr, loopID, src)
	if !errors.Is(err, boom) {
		t.Fatalf("want wrapped source error, got %v", err)
	}
	for _, s := range sinks {
		if !s.closed && !s.aborted {
			t.Fatalf("sink neither closed nor aborted after source failure: %+v", s)
		}
	}
}

// failingSource yields events until failAt, then returns err.
type failingSource struct {
	events []trace.Event
	pos    int
	failAt int
	err    error
}

func (s *failingSource) Next() (trace.Event, error) {
	if s.pos >= s.failAt {
		return trace.Event{}, s.err
	}
	if s.pos >= len(s.events) {
		return trace.Event{}, io.EOF
	}
	ev := s.events[s.pos]
	s.pos++
	return ev, nil
}
