package trace_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"github.com/example/vectrace/internal/pipeline"
	"github.com/example/vectrace/internal/trace"
)

// fuzzContainerSeed encodes events as a VTR2 container for seeding the
// corpora, recording them through a real module so the writer's region
// tracker runs too.
func fuzzContainerSeed(events []trace.Event, opts trace.ContainerOptions) []byte {
	mod, err := pipeline.Compile("fuzz.c", fuzzScannerSrc)
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if err := trace.EncodeContainer(&buf, mod, events, opts); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// fuzzContainerBytes records fuzzScannerSrc straight into a container.
func fuzzContainerBytes(tb testing.TB, opts trace.ContainerOptions) []byte {
	tb.Helper()
	mod, err := pipeline.Compile("fuzz.c", fuzzScannerSrc)
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := pipeline.RecordContainer(mod, &buf, opts); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// hangGuard converts a hung fuzz body into an immediate panic naming the
// input. The Go fuzzing engine has no per-exec timeout, so a decoder hang
// would otherwise surface as a silent CI timeout with no reproducer; ten
// seconds is orders of magnitude above any legitimate body cost. Use as
// `defer hangGuard(data)()`.
func hangGuard(data []byte) func() {
	done := make(chan struct{})
	go func() {
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			panic(fmt.Sprintf("fuzz body hung on %d-byte input: %x", len(data), data))
		}
	}()
	return func() { close(done) }
}

// checkCorruptClass asserts the VTR2 error contract for in-memory inputs: a
// bytes.Reader cannot fail, so every error must be typed corruption carrying
// a byte offset (block errors additionally name their block in the text).
func checkCorruptClass(t *testing.T, path string, err error) {
	t.Helper()
	if !errors.Is(err, trace.ErrCorruptTrace) {
		t.Fatalf("%s error %v does not wrap ErrCorruptTrace", path, err)
	}
	if _, ok := trace.CorruptOffset(err); !ok {
		t.Fatalf("%s error %v carries no byte offset", path, err)
	}
}

// FuzzDecodeVTR2 feeds arbitrary bytes to both VTR2 readers. Neither may
// panic or hang; every failure on in-memory bytes must wrap ErrCorruptTrace
// with a byte offset; and when both readers accept an input they must agree
// event-for-event (the footer index describes exactly the events the
// sequential block walk yields).
func FuzzDecodeVTR2(f *testing.F) {
	recorded := fuzzContainerBytes(f, trace.ContainerOptions{BlockBytes: 128, Codec: "flate"})
	f.Add(append([]byte{}, recorded...))
	f.Add(fuzzContainerSeed(nil, trace.ContainerOptions{}))
	f.Add(fuzzContainerSeed([]trace.Event{
		{ID: 0, Addr: trace.NoAddr},
		{ID: 1, Addr: 64},
		{ID: 2, Addr: 56},
	}, trace.ContainerOptions{BlockBytes: 64, Codec: "none"}))
	// Malformed seeds: wrong magic, bad codec, truncations at structural
	// boundaries, flips in a block payload and in the footer.
	f.Add([]byte{})
	f.Add([]byte("VTR2"))
	f.Add([]byte("VTR2\x02"))
	f.Add([]byte("2RTV\x00"))
	for _, cut := range []int{5, 6, len(recorded) / 2, len(recorded) - 9, len(recorded) - 1} {
		if cut >= 0 && cut <= len(recorded) {
			f.Add(append([]byte{}, recorded[:cut]...))
		}
	}
	for _, off := range []int{4, 7, len(recorded) / 2, len(recorded) - 12, len(recorded) - 5} {
		if off >= 0 && off < len(recorded) {
			corrupt := append([]byte{}, recorded...)
			corrupt[off] ^= 0x40
			f.Add(corrupt)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		defer hangGuard(data)()
		// Sequential block walk, footer unread.
		src := trace.NewBlockSource(bytes.NewReader(data), nil)
		var seq []trace.Event
		var seqErr error
		for {
			ev, err := src.Next()
			if err != nil {
				if err != io.EOF {
					seqErr = err
					checkCorruptClass(t, "block source", err)
				}
				break
			}
			seq = append(seq, ev)
		}

		// Indexed open: footer parse. Opening is lazy about block payloads —
		// a damaged frame passes open and is caught at read time by the
		// frame-header-vs-footer cross-check — so the invariant is pairwise:
		// whenever both paths accept, they agree event-for-event, and an
		// input the block walk rejects must not survive a full indexed read.
		c, err := trace.OpenContainer(bytes.NewReader(data), int64(len(data)), nil)
		if err != nil {
			checkCorruptClass(t, "open container", err)
			return
		}
		all, rerr := c.Cursor().EventRange(nil, 0, c.NumEvents())
		if rerr != nil {
			checkCorruptClass(t, "indexed read", rerr)
			return
		}
		if seqErr != nil {
			t.Fatalf("indexed read accepted frames the block walk rejects: %v", seqErr)
		}
		if c.NumEvents() != len(seq) {
			t.Fatalf("index reports %d events, block walk decoded %d", c.NumEvents(), len(seq))
		}
		for i := range all {
			if all[i] != seq[i] {
				t.Fatalf("event %d: indexed %+v, sequential %+v", i, all[i], seq[i])
			}
		}
	})
}

// FuzzRegionIndex mutates a recorded container around its footer: the index
// must never direct a reader outside the file or into a panic. Opening
// either rejects the mutation as typed corruption, or yields an index whose
// every region materializes exactly its advertised events from the block
// walk's event stream.
func FuzzRegionIndex(f *testing.F) {
	recorded := fuzzContainerBytes(f, trace.ContainerOptions{BlockBytes: 96, Codec: "none"})
	f.Add(append([]byte{}, recorded...))
	// The footer occupies the tail; seed flips and truncations there, plus a
	// lying trailer length.
	for off := len(recorded) - 40; off < len(recorded); off++ {
		if off < 0 {
			continue
		}
		corrupt := append([]byte{}, recorded...)
		corrupt[off] ^= 0x11
		f.Add(corrupt)
	}
	for _, cut := range []int{len(recorded) - 1, len(recorded) - 8, len(recorded) - 20} {
		if cut >= 0 && cut <= len(recorded) {
			f.Add(append([]byte{}, recorded[:cut]...))
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		defer hangGuard(data)()
		c, err := trace.OpenContainer(bytes.NewReader(data), int64(len(data)), nil)
		if err != nil {
			checkCorruptClass(t, "open container", err)
			return
		}
		// Replay sequentially as ground truth. A mutation can damage a block
		// payload while leaving the footer intact (open is lazy about
		// payloads), so a failed replay just means corruption lives in the
		// blocks; every region must then degrade to typed corruption or
		// materialize exactly its advertised events.
		src := trace.NewBlockSource(bytes.NewReader(data), nil)
		all, replayErr := trace.ReadAll(src)
		if replayErr != nil {
			checkCorruptClass(t, "sequential replay", replayErr)
		}
		cu := c.Cursor()
		for _, r := range c.Regions() {
			if r.Start < 0 || r.End < r.Start || r.End > c.NumEvents() {
				t.Fatalf("index region %+v out of bounds for %d events", r, c.NumEvents())
			}
			got, err := cu.EventRange(nil, r.Start, r.End)
			if err != nil {
				checkCorruptClass(t, "indexed region read", err)
				continue
			}
			if len(got) != r.Events() {
				t.Fatalf("region %+v materialized %d events", r, len(got))
			}
			if replayErr != nil {
				continue
			}
			for i, ev := range got {
				if ev != all[r.Start+i] {
					t.Fatalf("region %+v event %d: indexed %+v, sequential %+v", r, i, ev, all[r.Start+i])
				}
			}
		}
	})
}
