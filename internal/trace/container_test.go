package trace_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"github.com/example/vectrace/internal/faultio"
	"github.com/example/vectrace/internal/obs"
	"github.com/example/vectrace/internal/trace"
)

// containerSrc exercises every region-tracking shape at once: nested loops,
// a loop inside a callee, and a loop closed by an early return.
const containerSrc = `
double g;
double a[64];
void work() {
  int j;
  for (j = 0; j < 3; j++) { g = g + a[j]; }
}
int find(int x) {
  int i;
  for (i = 0; i < 8; i++) {
    if (i == x) { return i; }
    g = g + 1.0;
  }
  return 0 - 1;
}
void main() {
  int i; int k;
  for (i = 0; i < 5; i++) {
    for (k = 0; k < 4; k++) { a[k] = a[k] + g; }
    work();
  }
  printi(find(3));
}
`

// encodeContainer encodes tr's event stream as a VTR2 container.
func encodeContainer(t *testing.T, tr *trace.Trace, opts trace.ContainerOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.EncodeContainer(&buf, tr.Module, tr.Events, opts); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// containerCombos is the (block size, codec) matrix the round-trip
// properties run over; the small sizes force many blocks.
var containerCombos = []trace.ContainerOptions{
	{BlockBytes: 64, Codec: "none"},
	{BlockBytes: 64, Codec: "flate"},
	{BlockBytes: 1 << 10, Codec: "none"},
	{BlockBytes: 1 << 10, Codec: "flate"},
	{BlockBytes: 64 << 10, Codec: "flate"},
	{BlockBytes: 1 << 20, Codec: "flate"},
}

func TestContainerRoundTrip(t *testing.T) {
	tr := traceFor(t, containerSrc)
	for _, opts := range containerCombos {
		name := fmt.Sprintf("block=%d,codec=%s", opts.BlockBytes, opts.Codec)
		t.Run(name, func(t *testing.T) {
			data := encodeContainer(t, tr, opts)
			c, err := trace.OpenContainer(bytes.NewReader(data), int64(len(data)), nil)
			if err != nil {
				t.Fatal(err)
			}
			if c.NumEvents() != len(tr.Events) {
				t.Fatalf("NumEvents = %d, want %d", c.NumEvents(), len(tr.Events))
			}
			// Sequential walk reproduces the stream exactly.
			got, err := trace.ReadAll(trace.NewBlockSource(bytes.NewReader(data), nil))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tr.Events) {
				t.Fatal("BlockSource decode differs from original events")
			}
			// Random access reproduces it too.
			ranged, err := c.Cursor().EventRange(nil, 0, c.NumEvents())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ranged, tr.Events) {
				t.Fatal("Cursor.EventRange full range differs from original events")
			}
		})
	}
}

// TestContainerIndexMatchesRegions: the footer's per-loop region list must
// agree exactly with what the in-memory tracker computes — same count,
// same order, same [Start, End) bounds — for every loop in the program.
func TestContainerIndexMatchesRegions(t *testing.T) {
	tr := traceFor(t, containerSrc)
	data := encodeContainer(t, tr, trace.ContainerOptions{BlockBytes: 256})
	c, err := trace.OpenContainer(bytes.NewReader(data), int64(len(data)), nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for loopID := 0; loopID < 8; loopID++ {
		want := tr.Regions(loopID)
		got := c.RegionsOf(loopID)
		if len(got) != len(want) {
			t.Fatalf("loop %d: index has %d regions, tracker has %d", loopID, len(got), len(want))
		}
		for k := range want {
			if got[k].Start != want[k].Start || got[k].End != want[k].End {
				t.Fatalf("loop %d region %d: index [%d,%d), tracker [%d,%d)",
					loopID, k, got[k].Start, got[k].End, want[k].Start, want[k].End)
			}
			if got[k].LoopID != loopID {
				t.Fatalf("loop %d region %d: index names loop %d", loopID, k, got[k].LoopID)
			}
		}
		total += len(got)
	}
	if len(c.Regions()) != total {
		t.Fatalf("global index has %d regions, per-loop sum is %d", len(c.Regions()), total)
	}
}

// TestContainerRoundTripRandom: random event streams (valid IDs, random
// addresses including large negative deltas) survive the container round
// trip for every combo — the block-boundary address-chain reset is
// invisible to readers.
func TestContainerRoundTripRandom(t *testing.T) {
	tr := traceFor(t, containerSrc)
	mod := tr.Module
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		n := rng.Intn(4000)
		events := make([]trace.Event, n)
		for i := range events {
			events[i] = trace.Event{ID: rng.Int31n(int32(mod.NumInstrs)), Addr: trace.NoAddr}
			if rng.Intn(2) == 0 {
				events[i].Addr = rng.Int63n(1 << 40)
			}
		}
		opts := containerCombos[trial%len(containerCombos)]
		var buf bytes.Buffer
		if err := trace.EncodeContainer(&buf, mod, events, opts); err != nil {
			t.Fatal(err)
		}
		got, err := trace.ReadAll(trace.NewBlockSource(bytes.NewReader(buf.Bytes()), nil))
		if err != nil {
			t.Fatalf("trial %d (%+v): %v", trial, opts, err)
		}
		if len(got) != len(events) {
			t.Fatalf("trial %d: decoded %d events, want %d", trial, len(got), len(events))
		}
		for i := range events {
			if got[i] != events[i] {
				t.Fatalf("trial %d event %d: got %+v want %+v", trial, i, got[i], events[i])
			}
		}
	}
}

func TestOpenTraceSniffsFormats(t *testing.T) {
	tr := traceFor(t, containerSrc)

	var v1 bytes.Buffer
	if err := trace.Encode(&v1, tr.Events); err != nil {
		t.Fatal(err)
	}
	o, err := trace.OpenTrace(bytes.NewReader(v1.Bytes()), int64(v1.Len()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.Format != trace.FormatVTR1 || o.Container != nil || o.IndexErr != nil {
		t.Fatalf("vtr1 open = {%s container=%v indexErr=%v}", o.Format, o.Container, o.IndexErr)
	}
	got, err := trace.ReadAll(o.Source())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr.Events) {
		t.Fatal("vtr1 source differs from original events")
	}

	v2 := encodeContainer(t, tr, trace.ContainerOptions{BlockBytes: 512})
	o, err = trace.OpenTrace(bytes.NewReader(v2), int64(len(v2)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if o.Format != trace.FormatVTR2 || o.Container == nil || o.IndexErr != nil {
		t.Fatalf("vtr2 open = {%s container=%v indexErr=%v}", o.Format, o.Container, o.IndexErr)
	}
	got, err = trace.ReadAll(o.Source())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr.Events) {
		t.Fatal("vtr2 source differs from original events")
	}

	if _, err := trace.OpenTrace(strings.NewReader("NOPEnope"), 8, nil); !errors.Is(err, trace.ErrCorruptTrace) {
		t.Fatalf("unknown magic: err = %v, want ErrCorruptTrace", err)
	}
}

func TestContainerEmptyTrace(t *testing.T) {
	tr := traceFor(t, containerSrc)
	var buf bytes.Buffer
	if err := trace.EncodeContainer(&buf, tr.Module, nil, trace.ContainerOptions{}); err != nil {
		t.Fatal(err)
	}
	c, err := trace.OpenContainer(bytes.NewReader(buf.Bytes()), int64(buf.Len()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumEvents() != 0 || c.NumBlocks() != 0 || len(c.Regions()) != 0 {
		t.Fatalf("empty container: events=%d blocks=%d regions=%d", c.NumEvents(), c.NumBlocks(), len(c.Regions()))
	}
	if evs, err := trace.ReadAll(trace.NewBlockSource(bytes.NewReader(buf.Bytes()), nil)); err != nil || len(evs) != 0 {
		t.Fatalf("empty sequential walk: %d events, err %v", len(evs), err)
	}
}

// TestContainerBitFlipSweep: flipping any single byte in the data area is
// detected — by the footer cross-check, the per-block checksum, or the
// canonical decoder — and surfaces as ErrCorruptTrace naming a block and a
// byte offset. This is the end-to-end checksum guarantee.
func TestContainerBitFlipSweep(t *testing.T) {
	tr := traceFor(t, containerSrc)
	pristine := encodeContainer(t, tr, trace.ContainerOptions{BlockBytes: 512, Codec: "flate"})
	dataEnd := len(pristine) // conservative; flips beyond the data area are caught by footer checks
	for off := 5; off < dataEnd; off++ {
		data := append([]byte(nil), pristine...)
		data[off] ^= 0x40
		c, err := trace.OpenContainer(bytes.NewReader(data), int64(len(data)), nil)
		if err == nil {
			_, err = c.Cursor().EventRange(nil, 0, c.NumEvents())
		}
		if err == nil {
			t.Fatalf("flip at offset %d went undetected", off)
		}
		if !errors.Is(err, trace.ErrCorruptTrace) {
			t.Fatalf("flip at offset %d: err = %v, want ErrCorruptTrace", off, err)
		}
		if !strings.Contains(err.Error(), "byte offset") {
			t.Fatalf("flip at offset %d: error %q lacks a byte offset", off, err)
		}
	}
}

// TestContainerTruncationSweep: truncating a container at every byte offset
// never panics, never invents events (the sequential walk always yields a
// prefix of the original stream), and loses data only when data-area bytes
// are actually gone — a file cut inside its footer still replays fully,
// with OpenTrace reporting the lost index via IndexErr.
func TestContainerTruncationSweep(t *testing.T) {
	tr := traceFor(t, containerSrc)
	pristine := encodeContainer(t, tr, trace.ContainerOptions{BlockBytes: 512, Codec: "flate"})
	for cut := 4; cut < len(pristine); cut++ {
		data := pristine[:cut]
		o, err := trace.OpenTrace(bytes.NewReader(data), int64(len(data)), nil)
		if err != nil {
			if !errors.Is(err, trace.ErrCorruptTrace) {
				t.Fatalf("cut at %d: open err = %v, want ErrCorruptTrace", cut, err)
			}
			continue
		}
		var got []trace.Event
		src := o.Source()
		var srcErr error
		for {
			ev, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				srcErr = err
				break
			}
			got = append(got, ev)
		}
		if len(got) > len(tr.Events) {
			t.Fatalf("cut at %d: decoded %d events from a %d-event trace", cut, len(got), len(tr.Events))
		}
		for i := range got {
			if got[i] != tr.Events[i] {
				t.Fatalf("cut at %d: event %d = %+v, want %+v (not a prefix)", cut, i, got[i], tr.Events[i])
			}
		}
		if len(got) == len(tr.Events) {
			// All data intact: the cut was in the footer/trailer, so the
			// index must have been reported damaged.
			if o.IndexErr == nil && cut < len(pristine) {
				t.Fatalf("cut at %d: full replay but no IndexErr", cut)
			}
		} else if srcErr == nil {
			t.Fatalf("cut at %d: lost events (%d of %d) without an error", cut, len(got), len(tr.Events))
		} else if !errors.Is(srcErr, trace.ErrCorruptTrace) {
			t.Fatalf("cut at %d: source err = %v, want ErrCorruptTrace", cut, srcErr)
		}
	}
}

// TestBlockSourceReaderError: a genuine I/O failure mid-stream passes
// through without the ErrCorruptTrace mark — "reading it failed" stays
// distinguishable from "the file is damaged", exactly like VTR1.
func TestBlockSourceReaderError(t *testing.T) {
	tr := traceFor(t, containerSrc)
	data := encodeContainer(t, tr, trace.ContainerOptions{BlockBytes: 512})
	src := trace.NewBlockSource(&faultio.ErrReader{R: bytes.NewReader(data), FailAt: int64(len(data) / 2)}, nil)
	var err error
	for {
		if _, err = src.Next(); err != nil {
			break
		}
	}
	if err == io.EOF || !errors.Is(err, faultio.ErrInjected) {
		t.Fatalf("err = %v, want injected reader error", err)
	}
	if errors.Is(err, trace.ErrCorruptTrace) {
		t.Fatalf("reader failure misclassified as corruption: %v", err)
	}
}

// TestScanIndexedRegionsMatchesTracker: the parallel indexed scan yields,
// for every region of every loop, exactly the sub-trace the in-memory
// tracker defines — at 1 worker and at 4.
func TestScanIndexedRegionsMatchesTracker(t *testing.T) {
	tr := traceFor(t, containerSrc)
	data := encodeContainer(t, tr, trace.ContainerOptions{BlockBytes: 256, Codec: "flate"})
	c, err := trace.OpenContainer(bytes.NewReader(data), int64(len(data)), nil)
	if err != nil {
		t.Fatal(err)
	}
	for loopID := 0; loopID < 4; loopID++ {
		want := tr.Regions(loopID)
		for _, workers := range []int{1, 4} {
			got := make([][]trace.Event, len(want))
			err := c.ScanIndexedRegions(context.Background(), tr.Module, loopID, workers,
				func(k int, _ trace.IndexRegion, sub *trace.Trace, err error) {
					if err != nil {
						t.Errorf("loop %d region %d: %v", loopID, k, err)
						return
					}
					got[k] = sub.Events
				})
			if err != nil {
				t.Fatal(err)
			}
			for k, r := range want {
				if !reflect.DeepEqual(got[k], tr.RegionEvents(r)) {
					t.Fatalf("loop %d region %d (workers=%d): events differ from tracker", loopID, k, workers)
				}
			}
		}
	}
}

// TestRegionSeekReadsOnlyCoveringBlocks: materializing one small region of
// a many-block container decodes only the blocks its byte range covers —
// the index-seek guarantee, observed through the blocks-read counter.
func TestRegionSeekReadsOnlyCoveringBlocks(t *testing.T) {
	tr := traceFor(t, containerSrc)
	data := encodeContainer(t, tr, trace.ContainerOptions{BlockBytes: 64, Codec: "none"})
	rec := obs.New()
	c, err := trace.OpenContainer(bytes.NewReader(data), int64(len(data)), rec)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumBlocks() < 8 {
		t.Fatalf("test needs a many-block trace, got %d blocks", c.NumBlocks())
	}
	// Loop 0 is work()'s 3-iteration loop: its regions are tiny slivers of
	// the trace, each covering a handful of blocks.
	regions := c.RegionsOf(0)
	if len(regions) == 0 {
		t.Fatal("loop 0 has no indexed regions")
	}
	r := regions[len(regions)/2]
	if _, err := c.Cursor().RegionTrace(tr.Module, r); err != nil {
		t.Fatal(err)
	}
	read := rec.Get(obs.TraceBlocksRead)
	maxCovering := int64(r.Events()/8 + 2) // 64-byte blocks hold >= 8 events; +2 for boundary overlap
	if read == 0 || read > maxCovering {
		t.Fatalf("seek read %d blocks, want 1..%d of %d total", read, maxCovering, c.NumBlocks())
	}
	if hits := rec.Get(obs.RegionIndexHits); hits != 1 {
		t.Fatalf("region_index_hits = %d, want 1", hits)
	}
}
