package trace

import (
	"bufio"
	"bytes"
	"compress/flate"
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/example/vectrace/internal/ir"
	"github.com/example/vectrace/internal/obs"
)

// Reading a VTR2 container takes one of two shapes, both built from the
// same block decoder:
//
//   - Container (OpenContainer): footer-first random access. The footer is
//     parsed and checksum-verified once; afterwards any indexed loop region
//     maps to a block/byte range and a Cursor decodes exactly the covering
//     blocks, verifying each frame header against the footer (a lying
//     footer is corruption, named by block and byte offset). This is the
//     seam the parallel scanner and `analyze -instance K` seeks stand on.
//   - BlockSource (sequential): walk the frames front to back, footer
//     unread. This is the salvage path for damaged or truncated footers —
//     every intact block before the damage still yields its events — and
//     the sequential baseline the parallel scanner is differential-tested
//     against.

// corruptAt builds the standard positioned corruption error: an OffsetError
// whose cause wraps ErrCorruptTrace, rendering as
// "trace: <context> at byte offset <off>: ...".
func corruptAt(context string, off int64, format string, args ...any) error {
	args = append(args, ErrCorruptTrace)
	return &OffsetError{Context: context, Offset: off, Err: fmt.Errorf(format+": %w", args...)}
}

// asCorrupt classifies an error from decoding in-memory block bytes: plain
// truncation (EOF) becomes ErrUnexpectedEOF, and anything not already
// marked corrupt is marked — bytes already in memory cannot fail for I/O
// reasons, so every failure there is damage.
func asCorrupt(err error) error {
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	if !errors.Is(err, ErrCorruptTrace) {
		err = fmt.Errorf("%w: %w", err, ErrCorruptTrace)
	}
	return err
}

// validateBlockMeta enforces the invariants every block entry (frame header
// or footer copy) must satisfy before its sizes are trusted for allocation.
func validateBlockMeta(b blockMeta) error {
	switch {
	case b.raw == 0 || b.raw > maxBlockRawBytes:
		return fmt.Errorf("block declares %d raw bytes (want 1..%d): %w", b.raw, maxBlockRawBytes, ErrCorruptTrace)
	case b.events == 0 || b.events > b.raw:
		return fmt.Errorf("block declares %d events in %d raw bytes: %w", b.events, b.raw, ErrCorruptTrace)
	case !b.compressed && b.stored != b.raw:
		return fmt.Errorf("uncompressed block stores %d bytes but declares %d raw: %w", b.stored, b.raw, ErrCorruptTrace)
	case b.compressed && (b.stored == 0 || b.stored >= b.raw):
		return fmt.Errorf("compressed block stores %d bytes for %d raw (writer only compresses when smaller): %w", b.stored, b.raw, ErrCorruptTrace)
	}
	return nil
}

// parseBlockEntry reads one block entry — the layout shared by on-wire
// frame headers and footer block-index entries — from cur.
func parseBlockEntry(cur *byteCursor) (blockMeta, error) {
	word, err := cur.readUvarint()
	if err != nil {
		return blockMeta{}, err
	}
	return parseBlockTail(cur, word)
}

// parseBlockTail finishes a block entry whose leading stored-length word
// has already been read (the sequential walker reads it separately to spot
// the end-of-blocks sentinel).
func parseBlockTail(cur *byteCursor, word uint64) (blockMeta, error) {
	var b blockMeta
	b.compressed = word&1 != 0
	if word>>1 > maxBlockRawBytes {
		return b, fmt.Errorf("block declares %d stored bytes: %w", word>>1, ErrCorruptTrace)
	}
	b.stored = int(word >> 1)
	raw, err := cur.readUvarint()
	if err != nil {
		return b, err
	}
	if raw > maxBlockRawBytes {
		return b, fmt.Errorf("block declares %d raw bytes (max %d): %w", raw, maxBlockRawBytes, ErrCorruptTrace)
	}
	b.raw = int(raw)
	events, err := cur.readUvarint()
	if err != nil {
		return b, err
	}
	if events > uint64(b.raw) {
		return b, fmt.Errorf("block declares %d events in %d raw bytes: %w", events, b.raw, ErrCorruptTrace)
	}
	b.events = int(events)
	var crc [4]byte
	for i := range crc {
		if crc[i], err = cur.readByte(); err != nil {
			return b, err
		}
	}
	b.crc = uint32(crc[0]) | uint32(crc[1])<<8 | uint32(crc[2])<<16 | uint32(crc[3])<<24
	return b, validateBlockMeta(b)
}

// readAllLimit reads from r into *scratch (reused across calls) until limit
// bytes arrive or r ends. It returns the bytes read and: nil when exactly
// limit bytes arrived, io.EOF / io.ErrUnexpectedEOF when r ended first, or
// r's own error. The buffer grows by doubling, so a limit far beyond what r
// actually yields costs no allocation — the defense against lying size
// fields in unverified frame headers.
func readAllLimit(r io.Reader, scratch *[]byte, limit int) ([]byte, error) {
	buf := (*scratch)[:0]
	for len(buf) < limit {
		if len(buf) == cap(buf) {
			grow := cap(buf) * 2
			if grow < 4<<10 {
				grow = 4 << 10
			}
			if grow > limit {
				grow = limit
			}
			nb := make([]byte, len(buf), grow)
			copy(nb, buf)
			buf = nb
		}
		end := cap(buf)
		if end > limit {
			end = limit
		}
		n, err := io.ReadFull(r, buf[len(buf):end])
		buf = buf[:len(buf)+n]
		if err != nil {
			*scratch = buf
			return buf, err
		}
	}
	*scratch = buf
	return buf, nil
}

// decodeBlock turns a block's stored payload into events appended to dst:
// checksum, optional inflate (into *inflate, reused across blocks), then
// the canonical event decode with the per-block address chain starting at
// 0. Exactly b.events events must consume exactly b.raw bytes — anything
// else is corruption. Returned errors wrap ErrCorruptTrace but carry no
// position; callers wrap them in an OffsetError naming the block.
func decodeBlock(stored []byte, b blockMeta, dst []Event, inflate *[]byte) ([]Event, error) {
	if crc32.ChecksumIEEE(stored) != b.crc {
		return dst, fmt.Errorf("block checksum mismatch: %w", ErrCorruptTrace)
	}
	raw := stored
	if b.compressed {
		fr := flate.NewReader(bytes.NewReader(stored))
		// Inflate into a doubling buffer bounded by the declared size plus
		// one: the header's raw field is outside the payload checksum, so a
		// lying value must not provoke a huge up-front allocation — growth
		// tracks what the stream actually inflates to.
		buf, err := readAllLimit(fr, inflate, b.raw+1)
		switch {
		case err == nil:
			return dst, fmt.Errorf("block inflates past its declared %d raw bytes: %w", b.raw, ErrCorruptTrace)
		case err == io.ErrUnexpectedEOF || err == io.EOF:
			if len(buf) != b.raw {
				return dst, fmt.Errorf("block declares %d raw bytes but inflates to %d: %w", b.raw, len(buf), ErrCorruptTrace)
			}
		default:
			return dst, fmt.Errorf("inflating block: %v: %w", err, ErrCorruptTrace)
		}
		raw = buf
	}
	cur := byteCursor{br: bytes.NewReader(raw)}
	var prevAddr int64
	for i := 0; i < b.events; i++ {
		head, err := cur.readUvarint()
		if err != nil {
			return dst, asCorrupt(err)
		}
		if head == 0 {
			return dst, fmt.Errorf("unexpected end-of-stream sentinel inside block: %w", ErrCorruptTrace)
		}
		ev, _, err := decodeEventTail(&cur, head, &prevAddr)
		if err != nil {
			return dst, asCorrupt(err)
		}
		dst = append(dst, ev)
	}
	if cur.off != int64(len(raw)) {
		return dst, fmt.Errorf("%d trailing bytes after block's %d events: %w", int64(len(raw))-cur.off, b.events, ErrCorruptTrace)
	}
	return dst, nil
}

// blockInfo is a footer block entry plus its computed file geometry.
type blockInfo struct {
	blockMeta
	off        int64 // file offset of the frame header
	payloadOff int64 // file offset of the stored payload
	first      int   // absolute index of the block's first event
}

// A Container is an open VTR2 trace file with a verified footer index. It
// is immutable after OpenContainer and safe for concurrent use; per-reader
// mutable state (the single-block cache) lives in Cursors.
type Container struct {
	r    io.ReaderAt
	size int64
	rec  *obs.Recorder

	codec     byte
	blocks    []blockInfo
	regions   []IndexRegion // global close order
	numEvents int
}

// readAt fills p from offset off, counting the bytes read and classifying
// short reads (truncation) as corruption.
func (c *Container) readAt(context string, p []byte, off int64) error {
	n, err := c.r.ReadAt(p, off)
	c.rec.Add(obs.TraceBytesRead, int64(n))
	if n == len(p) {
		return nil
	}
	if err == nil || err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
		return corruptAt(context, off+int64(n), "unexpected EOF")
	}
	return &OffsetError{Context: context, Offset: off + int64(n), Err: err}
}

// OpenContainer parses and verifies a VTR2 file's header, trailer, and
// footer index from a random-access reader. It reads only the fixed header
// and the footer — O(index), not O(trace) — so opening a multi-GB
// container is cheap. Block payloads are fetched and verified lazily by
// Cursors. A nil recorder is fine.
func OpenContainer(r io.ReaderAt, size int64, rec *obs.Recorder) (*Container, error) {
	c := &Container{r: r, size: size, rec: rec}
	// Smallest valid container: header + sentinel + empty footer + trailer.
	minFooter := int64(1 + 1 + 4) // numBlocks, numRegions, crc
	if size < headerLen+1+minFooter+trailerLen {
		return nil, corruptAt("reading vtr2 header", size, "file too small (%d bytes) for a vtr2 container", size)
	}
	var hdr [headerLen]byte
	if err := c.readAt("reading vtr2 header", hdr[:], 0); err != nil {
		return nil, err
	}
	if string(hdr[:4]) != magic2 {
		return nil, corruptAt("reading vtr2 header", 0, "bad magic %q", hdr[:4])
	}
	if hdr[4] > codecFlate {
		return nil, corruptAt("reading vtr2 header", 4, "unknown codec %d", hdr[4])
	}
	c.codec = hdr[4]

	var tr [trailerLen]byte
	if err := c.readAt("reading vtr2 trailer", tr[:], size-trailerLen); err != nil {
		return nil, err
	}
	if string(tr[4:]) != magic2End {
		return nil, corruptAt("reading vtr2 trailer", size-trailerLen+4, "bad end magic %q", tr[4:])
	}
	footerLen := int64(uint32(tr[0]) | uint32(tr[1])<<8 | uint32(tr[2])<<16 | uint32(tr[3])<<24)
	footerStart := size - trailerLen - footerLen
	if footerLen < minFooter || footerStart < headerLen+1 {
		return nil, corruptAt("reading vtr2 trailer", size-trailerLen, "footer length %d does not fit the file", footerLen)
	}
	footer := make([]byte, footerLen)
	if err := c.readAt("reading vtr2 footer", footer, footerStart); err != nil {
		return nil, err
	}
	body := footer[:footerLen-4]
	wantCRC := uint32(footer[footerLen-4]) | uint32(footer[footerLen-3])<<8 |
		uint32(footer[footerLen-2])<<16 | uint32(footer[footerLen-1])<<24
	if crc32.ChecksumIEEE(body) != wantCRC {
		return nil, corruptAt("reading vtr2 footer", footerStart, "footer checksum mismatch")
	}

	// Parse the verified footer. Cursor offsets are relative to the footer;
	// reported offsets are rebased to the file.
	cur := byteCursor{br: bytes.NewReader(body)}
	ffail := func(err error) error {
		return &OffsetError{Context: "parsing vtr2 footer", Offset: footerStart + cur.off, Err: asCorrupt(err)}
	}
	numBlocks, err := cur.readUvarint()
	if err != nil {
		return nil, ffail(err)
	}
	if numBlocks > uint64(footerLen) {
		return nil, ffail(fmt.Errorf("footer declares %d blocks in %d bytes", numBlocks, footerLen))
	}
	off := int64(headerLen)
	for i := 0; i < int(numBlocks); i++ {
		meta, err := parseBlockEntry(&cur)
		if err != nil {
			return nil, ffail(fmt.Errorf("block %d entry: %w", i, err))
		}
		bi := blockInfo{blockMeta: meta, off: off, first: c.numEvents}
		bi.payloadOff = off + int64(meta.frameHeaderLen())
		off = bi.payloadOff + int64(meta.stored)
		if off > footerStart-1 {
			return nil, ffail(fmt.Errorf("block %d overruns the data area (ends at %d of %d)", i, off, footerStart-1))
		}
		c.blocks = append(c.blocks, bi)
		c.numEvents += meta.events
	}
	if off != footerStart-1 {
		return nil, ffail(fmt.Errorf("blocks end at %d but footer starts at %d", off, footerStart))
	}
	var sentinel [1]byte
	if err := c.readAt("reading vtr2 end-of-blocks sentinel", sentinel[:], off); err != nil {
		return nil, err
	}
	if sentinel[0] != 0 {
		return nil, corruptAt("reading vtr2 end-of-blocks sentinel", off, "want 0x00, found 0x%02x", sentinel[0])
	}
	numRegions, err := cur.readUvarint()
	if err != nil {
		return nil, ffail(err)
	}
	if numRegions > uint64(footerLen) {
		return nil, ffail(fmt.Errorf("footer declares %d regions in %d bytes", numRegions, footerLen))
	}
	for i := 0; i < int(numRegions); i++ {
		var v [4]uint64 // loopID, start, length, depth
		for j := range v {
			if v[j], err = cur.readUvarint(); err != nil {
				return nil, ffail(fmt.Errorf("region %d entry: %w", i, err))
			}
		}
		if v[0] > maxID {
			return nil, ffail(fmt.Errorf("region %d names loop ID %d (max %d)", i, v[0], int64(maxID)))
		}
		start, length := v[1], v[2]
		if start > uint64(c.numEvents) || length > uint64(c.numEvents)-start {
			return nil, ffail(fmt.Errorf("region %d spans [%d, %d) of %d events", i, start, start+length, c.numEvents))
		}
		c.regions = append(c.regions, IndexRegion{
			LoopID: int(v[0]),
			Start:  int(start),
			End:    int(start + length),
			Depth:  int(v[3]),
		})
	}
	if cur.off != int64(len(body)) {
		return nil, ffail(fmt.Errorf("%d trailing footer bytes", int64(len(body))-cur.off))
	}
	return c, nil
}

// NumEvents returns the total event count across all blocks.
func (c *Container) NumEvents() int { return c.numEvents }

// NumBlocks returns the block count.
func (c *Container) NumBlocks() int { return len(c.blocks) }

// Codec returns the container's codec name ("flate" or "none").
func (c *Container) Codec() string { return codecName(c.codec) }

// Regions returns the footer's region index in global close order. The
// returned slice is the container's own — callers must not mutate it.
func (c *Container) Regions() []IndexRegion { return c.regions }

// RegionsOf returns loopID's regions in close order — index k in the result
// is dynamic region k of that loop, the same numbering the sequential
// scanner and RegionReport.Index use.
func (c *Container) RegionsOf(loopID int) []IndexRegion {
	var out []IndexRegion
	for _, r := range c.regions {
		if r.LoopID == loopID {
			out = append(out, r)
		}
	}
	return out
}

// blockFor returns the index of the block containing absolute event idx.
func (c *Container) blockFor(idx int) int {
	return sort.Search(len(c.blocks), func(i int) bool {
		return c.blocks[i].first+c.blocks[i].events > idx
	})
}

// A Cursor reads event ranges from a Container through a single-block
// cache, so consecutive lookups touching the same block (the common case:
// a loop's regions cluster) decode it once. Each concurrent reader — every
// scan worker — owns its own Cursor; Cursors are not safe for concurrent
// use, the shared Container is.
type Cursor struct {
	c        *Container
	blockIdx int // block currently decoded in events, -1 when empty
	events   []Event
	frame    []byte // frame header + stored payload scratch
	inflate  []byte // decompression scratch
}

// Cursor returns a new, empty cursor over the container.
func (c *Container) Cursor() *Cursor { return &Cursor{c: c, blockIdx: -1} }

// load decodes block i into the cursor's cache, verifying the on-wire
// frame header against the footer entry (disagreement means a lying footer
// or a damaged frame — corruption either way, named by block).
func (cu *Cursor) load(i int) error {
	if cu.blockIdx == i {
		return nil
	}
	c := cu.c
	b := c.blocks[i]
	hdrLen := b.frameHeaderLen()
	need := hdrLen + b.stored
	if cap(cu.frame) < need {
		cu.frame = make([]byte, need)
	}
	frame := cu.frame[:need]
	readCtx := fmt.Sprintf("reading vtr2 block %d", i)
	if err := c.readAt(readCtx, frame, b.off); err != nil {
		return err
	}
	hcur := byteCursor{br: bytes.NewReader(frame[:hdrLen])}
	onWire, err := parseBlockEntry(&hcur)
	if err != nil {
		return &OffsetError{Context: readCtx, Offset: b.off + hcur.off, Err: asCorrupt(err)}
	}
	if onWire != b.blockMeta {
		return corruptAt(readCtx, b.off, "frame header disagrees with footer index")
	}
	c.rec.Add(obs.TraceBlocksRead, 1)
	if b.compressed {
		c.rec.Add(obs.TraceBlocksDecompressed, 1)
	}
	events, err := decodeBlock(frame[hdrLen:], b.blockMeta, cu.events[:0], &cu.inflate)
	if err != nil {
		cu.blockIdx = -1
		cu.events = events[:0]
		return &OffsetError{Context: fmt.Sprintf("decoding vtr2 block %d", i), Offset: b.payloadOff, Err: err}
	}
	cu.blockIdx = i
	cu.events = events
	return nil
}

// EventRange appends events [start, end) to dst, decoding only the blocks
// the range covers.
func (cu *Cursor) EventRange(dst []Event, start, end int) ([]Event, error) {
	c := cu.c
	if start < 0 || end < start || end > c.numEvents {
		return dst, fmt.Errorf("trace: event range [%d, %d) outside container's %d events", start, end, c.numEvents)
	}
	for bi := c.blockFor(start); start < end; bi++ {
		if err := cu.load(bi); err != nil {
			return dst, err
		}
		b := c.blocks[bi]
		lo := start - b.first
		hi := end - b.first
		if hi > b.events {
			hi = b.events
		}
		dst = append(dst, cu.events[lo:hi]...)
		start = b.first + hi
	}
	return dst, nil
}

// RegionTrace materializes one indexed region as a sub-trace over mod —
// the index-seek primitive behind `analyze -instance K` and the parallel
// scanner. Only the blocks covering [r.Start, r.End) are decoded, which is
// what the blocks-read counter observes. Event IDs are validated against
// the module, mirroring the sequential scanner's check.
func (cu *Cursor) RegionTrace(mod *ir.Module, r IndexRegion) (*Trace, error) {
	events, err := cu.EventRange(nil, r.Start, r.End)
	if err != nil {
		return nil, err
	}
	for i, ev := range events {
		if int(ev.ID) >= mod.NumInstrs {
			return nil, fmt.Errorf("trace: event %d: instruction ID %d not in module (%d instructions): %w",
				r.Start+i, ev.ID, mod.NumInstrs, ErrCorruptTrace)
		}
	}
	cu.c.rec.Add(obs.RegionIndexHits, 1)
	return &Trace{Module: mod, Events: events}, nil
}

// A BlockSource is an EventSource walking a VTR2 file's block frames
// sequentially, never consulting the footer: the salvage path for
// containers whose footer is damaged or missing (every intact block before
// the damage still yields its events) and the sequential baseline the
// parallel scanner is differential-tested against. Damage surfaces as an
// OffsetError naming the block and byte offset, wrapping ErrCorruptTrace
// for malformed bytes — the same contract as the VTR1 Decoder, so the
// pipeline's degrade-per-region behaviour carries over unchanged.
type BlockSource struct {
	br      *bufio.Reader
	cur     byteCursor
	rec     *obs.Recorder
	codec   byte
	started bool
	done    bool
	block   int // index of the next block to read
	events  []Event
	pos     int
	payload []byte
	inflate []byte
	err     error
}

// NewBlockSource returns a sequential reader of the VTR2 stream r. The
// header is checked on the first Next call. A nil recorder is fine.
func NewBlockSource(r io.Reader, rec *obs.Recorder) *BlockSource {
	br := bufio.NewReaderSize(r, 32<<10)
	return &BlockSource{br: br, cur: byteCursor{br: br}, rec: rec}
}

// fail latches a positioned error, classifying truncation as corruption
// exactly like the VTR1 decoder: EOF mid-structure becomes unexpected EOF
// wrapping ErrCorruptTrace; genuine reader failures pass through unmarked.
func (s *BlockSource) fail(context string, err error) error {
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	if errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, ErrCorruptTrace) {
		err = fmt.Errorf("%w: %w", err, ErrCorruptTrace)
	}
	s.err = &OffsetError{Context: context, Offset: s.cur.off, Err: err}
	return s.err
}

// fill reads and decodes the next block into the event buffer.
func (s *BlockSource) fill() error {
	if !s.started {
		s.started = true
		var hdr [headerLen]byte
		for i := range hdr {
			b, err := s.cur.readByte()
			if err != nil {
				return s.fail("reading vtr2 header", err)
			}
			hdr[i] = b
		}
		if string(hdr[:4]) != magic2 {
			return s.fail("reading vtr2 header", fmt.Errorf("bad magic %q: %w", hdr[:4], ErrCorruptTrace))
		}
		if hdr[4] > codecFlate {
			return s.fail("reading vtr2 header", fmt.Errorf("unknown codec %d: %w", hdr[4], ErrCorruptTrace))
		}
		s.codec = hdr[4]
	}
	frameCtx := fmt.Sprintf("reading vtr2 block %d", s.block)
	word, err := s.cur.readUvarint()
	if err != nil {
		return s.fail(frameCtx, err)
	}
	if word == 0 { // end-of-blocks sentinel; footer bytes stay unread
		s.done = true
		return nil
	}
	meta, err := parseBlockTail(&s.cur, word)
	if err != nil {
		return s.fail(frameCtx, err)
	}
	if meta.compressed && s.codec == codecNone {
		return s.fail(frameCtx, fmt.Errorf("compressed block in a codec-none container: %w", ErrCorruptTrace))
	}
	// The declared stored size is unverified until the payload checksum, so
	// read through the bounded-growth helper rather than allocating it up
	// front — a lying frame on a short input costs only the bytes present.
	payload, err := readAllLimit(s.br, &s.payload, meta.stored)
	s.cur.off += int64(len(payload))
	if err != nil {
		return s.fail(frameCtx, err)
	}
	s.rec.Add(obs.TraceBlocksRead, 1)
	if meta.compressed {
		s.rec.Add(obs.TraceBlocksDecompressed, 1)
	}
	decoded, err := decodeBlock(payload, meta, s.events[:0], &s.inflate)
	if err != nil {
		s.events = decoded[:0]
		return s.fail(fmt.Sprintf("decoding vtr2 block %d", s.block), err)
	}
	s.events = decoded
	s.pos = 0
	s.block++
	return nil
}

// Next returns the next event, or io.EOF after the last block.
func (s *BlockSource) Next() (Event, error) {
	if s.err != nil {
		return Event{}, s.err
	}
	for s.pos >= len(s.events) {
		if s.done {
			return Event{}, io.EOF
		}
		s.events = s.events[:0]
		s.pos = 0
		if err := s.fill(); err != nil {
			return Event{}, err
		}
	}
	ev := s.events[s.pos]
	s.pos++
	return ev, nil
}

// ScanIndexedRegions decodes the indexed regions of loop loopID across
// workers goroutines, calling handle(k, r, sub, err) once per region — k is
// the region's close-order index within the loop (the same numbering the
// sequential scanner reports), sub the materialized sub-trace (nil when
// decoding its blocks failed). handle runs concurrently on worker
// goroutines; callers writing to index-addressed slots need no further
// synchronization. Workers claim contiguous chunks of regions rather than
// single regions: many small regions usually share a block, and chunking
// keeps a block's regions on the cursor that already decoded it instead of
// making every worker inflate every block. Each worker owns a Cursor, and
// each worker's wall time lands in the "scan-worker" span aggregate.
// Returns ctx.Err() when canceled, nil otherwise — per-region failures are
// reported only through handle, keeping the degrade-per-region contract.
func (c *Container) ScanIndexedRegions(ctx context.Context, mod *ir.Module, loopID, workers int, handle func(k int, r IndexRegion, sub *Trace, err error)) error {
	regions := c.RegionsOf(loopID)
	if len(regions) == 0 {
		return ctx.Err()
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(regions) {
		workers = len(regions)
	}
	// 8 chunks per worker balances load (region cost varies) against block
	// locality (chunk boundaries are where two cursors decode the same block).
	chunk := (len(regions) + workers*8 - 1) / (workers * 8)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cu := c.Cursor()
			t := c.rec.StartTimer("scan-worker")
			defer t.Stop()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= len(regions) || ctx.Err() != nil {
					return
				}
				hi := lo + chunk
				if hi > len(regions) {
					hi = len(regions)
				}
				for k := lo; k < hi; k++ {
					if ctx.Err() != nil {
						return
					}
					r := regions[k]
					sub, err := cu.RegionTrace(mod, r)
					if err == nil {
						c.rec.Add(obs.EventsScanned, int64(r.Events()))
						c.rec.Add(obs.RegionsScanned, 1)
					}
					handle(k, r, sub, err)
				}
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
