package main

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"time"

	"github.com/example/vectrace/internal/core"
	"github.com/example/vectrace/internal/ddg"
	"github.com/example/vectrace/internal/diag"
	"github.com/example/vectrace/internal/pipeline"
	"github.com/example/vectrace/internal/trace"
)

// scanSrc is the synthetic multi-region program behind -scan: the inner
// loop on line 6 opens one dynamic region per outer iteration, so a trace
// with R regions stresses exactly the region-scan machinery the VTR2 index
// parallelizes. The strided array walk keeps the per-region analysis
// non-trivial without dominating the scan cost being measured.
const scanSrc = `
double a[64];
double g;
void main() {
  int t; int i;
  for (t = 0; t < %d; t++) {
    for (i = 0; i < 64; i++) { a[i] = a[i] * 1.5 + g; }
    g = g + a[0];
  }
}
`

// scanLoopLine is the source line of the inner loop in scanSrc.
const scanLoopLine = 7

// runScan benchmarks region-scan throughput on a recorded trace: the VTR1
// sequential scanner versus the VTR2 container — sequential block walk and
// indexed scans at increasing worker counts. Every path runs the identical
// per-region analysis, and the row outputs are cross-checked against the
// VTR1 baseline before a row is printed, so the table doubles as a smoke
// differential. regions picks the dynamic region count (the -scan value).
func runScan(ctx context.Context, regions int, opts core.Options, tf diag.TraceFormat) error {
	src := fmt.Sprintf(scanSrc, regions)
	mod, err := pipeline.Compile("scan.c", src)
	if err != nil {
		return err
	}
	var v1, v2 bytes.Buffer
	if _, err := pipeline.Record(mod, &v1); err != nil {
		return err
	}
	if _, err := pipeline.RecordContainer(mod, &v2, tf.ContainerOptions()); err != nil {
		return err
	}
	c, err := trace.OpenContainer(bytes.NewReader(v2.Bytes()), int64(v2.Len()), nil)
	if err != nil {
		return err
	}
	dopts := ddg.Options{}

	baseline, err := pipeline.AnalyzeLoopRegionsStream(mod, trace.NewDecoder(bytes.NewReader(v1.Bytes())), scanLoopLine, dopts, opts)
	if err != nil {
		return err
	}
	events := 0
	for _, rr := range baseline {
		events += rr.Events
	}

	check := func(regs []pipeline.RegionReport) error {
		if len(regs) != len(baseline) {
			return fmt.Errorf("scan: %d regions, baseline has %d", len(regs), len(baseline))
		}
		for i := range regs {
			if regs[i].Events != baseline[i].Events {
				return fmt.Errorf("scan: region %d has %d events, baseline %d", i, regs[i].Events, baseline[i].Events)
			}
			if regs[i].Report.String() != baseline[i].Report.String() {
				return fmt.Errorf("scan: region %d report differs from baseline", i)
			}
		}
		return nil
	}

	fmt.Printf("== Scan throughput: %d regions, %d region events (vtr1 %d bytes; vtr2 %d bytes, %d blocks, %s) ==\n",
		len(baseline), events, v1.Len(), v2.Len(), c.NumBlocks(), c.Codec())
	fmt.Printf("%-18s %7s %12s %14s %9s\n", "path", "width", "wall", "events/s", "speedup")

	var base time.Duration
	row := func(name string, width int, run func() ([]pipeline.RegionReport, error)) error {
		start := time.Now()
		regs, err := run()
		wall := time.Since(start)
		if err != nil {
			return err
		}
		if err := check(regs); err != nil {
			return err
		}
		if base == 0 {
			base = wall
		}
		rate := float64(events) / wall.Seconds()
		fmt.Printf("%-18s %7d %12s %14.0f %8.2fx\n", name, width, wall.Round(time.Microsecond), rate, float64(base)/float64(wall))
		return nil
	}

	if err := row("vtr1 sequential", 1, func() ([]pipeline.RegionReport, error) {
		return pipeline.AnalyzeLoopRegionsStreamCtx(ctx, mod, trace.NewDecoder(bytes.NewReader(v1.Bytes())), scanLoopLine, dopts, opts)
	}); err != nil {
		return err
	}
	if err := row("vtr2 sequential", 1, func() ([]pipeline.RegionReport, error) {
		return pipeline.AnalyzeLoopRegionsStreamCtx(ctx, mod, trace.NewBlockSource(bytes.NewReader(v2.Bytes()), nil), scanLoopLine, dopts, opts)
	}); err != nil {
		return err
	}
	maxWidth := opts.WorkerCount()
	if maxWidth < 1 {
		maxWidth = runtime.GOMAXPROCS(0)
	}
	if tf.ScanWorkers > 0 {
		// An explicit -scan-workers pins the top width even past GOMAXPROCS:
		// oversubscribed widths still cross-check correctness.
		maxWidth = tf.ScanWorkers
	}
	for width := 1; ; width *= 2 {
		if width > maxWidth {
			break
		}
		w := width
		if err := row("vtr2 indexed", w, func() ([]pipeline.RegionReport, error) {
			return pipeline.AnalyzeLoopRegionsIndexed(ctx, c, mod, scanLoopLine, dopts, opts, w)
		}); err != nil {
			return err
		}
	}
	return nil
}
