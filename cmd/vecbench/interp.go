package main

import (
	"context"
	"fmt"
	"reflect"
	"time"

	"github.com/example/vectrace/internal/interp"
	"github.com/example/vectrace/internal/ir"
	"github.com/example/vectrace/internal/kernels"
	"github.com/example/vectrace/internal/pipeline"
)

// interpSuite is the stock kernel set behind -interp: the paper's Table 2
// kernels plus Listing 1, sized by the -interp value so the dominant cost is
// steady-state dispatch rather than setup.
func interpSuite(n int) []kernels.Kernel {
	return []kernels.Kernel{
		kernels.Listing1(n * 8),
		kernels.GaussSeidel(n, 8),
		kernels.PDESolver(n, 3),
	}
}

// interpRun is one timed execution of a module under one dispatch engine.
type interpRun struct {
	res  *interp.Result
	wall time.Duration
}

// timeRun executes main once under cfg and returns the result with its wall
// time.
func timeRun(ctx context.Context, mod *ir.Module, cfg interp.Config) (interpRun, error) {
	m := interp.New(mod, cfg)
	start := time.Now()
	res, err := m.RunContext(ctx, "main")
	wall := time.Since(start)
	if err != nil {
		return interpRun{}, err
	}
	return interpRun{res: res, wall: wall}, nil
}

// runInterp benchmarks the interpreter's dispatch engines head to head on
// the stock kernel suite: the legacy switch-loop oracle, the precompiled
// plan engine, and the plan engine feeding a batched TraceSink (the tracing
// configuration the analysis pipeline runs). Every row is cross-checked
// against the oracle — identical Steps, Cycles, FPOps, and print output —
// before it prints, so the table doubles as a differential. The interpreter
// itself records interp_steps/interp_batched_events through the recorder on
// ctx; the per-kernel plan-vs-oracle speedups land in summary, which the
// caller folds into the stats config map (and so into BENCH_<rev>.json
// under -stats auto).
func runInterp(ctx context.Context, n int, summary map[string]any) error {
	fmt.Printf("== Interpreter dispatch: plan vs oracle (n=%d) ==\n", n)
	fmt.Printf("%-14s %-12s %12s %14s %9s\n", "kernel", "engine", "wall", "steps/s", "speedup")
	for _, k := range interpSuite(n) {
		mod, err := pipeline.Compile(k.Name+".c", k.Source)
		if err != nil {
			return err
		}
		plan := interp.CompilePlan(mod)
		oracle, err := timeRun(ctx, mod, interp.Config{Oracle: true, CountLoopCycles: true})
		if err != nil {
			return err
		}
		row := func(engine string, cfg interp.Config) (interpRun, error) {
			r, err := timeRun(ctx, mod, cfg)
			if err != nil {
				return interpRun{}, err
			}
			if r.res.Steps != oracle.res.Steps || r.res.Cycles != oracle.res.Cycles ||
				r.res.FPOps != oracle.res.FPOps || !reflect.DeepEqual(r.res.Output, oracle.res.Output) {
				return interpRun{}, fmt.Errorf("interp: %s: %s run diverged from oracle (steps %d vs %d)",
					k.Name, engine, r.res.Steps, oracle.res.Steps)
			}
			fmt.Printf("%-14s %-12s %12s %14.0f %8.2fx\n", k.Name, engine,
				r.wall.Round(time.Microsecond),
				float64(r.res.Steps)/r.wall.Seconds(),
				float64(oracle.wall)/float64(r.wall))
			return r, nil
		}
		fmt.Printf("%-14s %-12s %12s %14.0f %9s\n", k.Name, "oracle",
			oracle.wall.Round(time.Microsecond),
			float64(oracle.res.Steps)/oracle.wall.Seconds(), "1.00x")
		planRun, err := row("plan", interp.Config{Plan: plan, CountLoopCycles: true})
		if err != nil {
			return err
		}
		sink := &interp.TraceSink{}
		if _, err := row("plan+trace", interp.Config{Plan: plan, Tracer: sink, CountLoopCycles: true}); err != nil {
			return err
		}
		if got, want := int64(len(sink.Events)), oracle.res.Steps; got > want {
			return fmt.Errorf("interp: %s: traced %d events for %d steps", k.Name, got, want)
		}
		summary[fmt.Sprintf("interp_speedup_%s", k.Name)] =
			float64(oracle.wall) / float64(planRun.wall)
		summary[fmt.Sprintf("interp_plan_steps_per_sec_%s", k.Name)] =
			float64(planRun.res.Steps) / planRun.wall.Seconds()
	}
	return nil
}
