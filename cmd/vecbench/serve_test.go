package main

import (
	"context"
	"testing"
)

// TestRunServeSummary runs a miniature -serve sweep and checks the summary
// carries the trajectory keys the BENCH_<rev>.json fold depends on.
func TestRunServeSummary(t *testing.T) {
	if testing.Short() {
		t.Skip("service sweep in -short mode")
	}
	summary := map[string]any{}
	if err := runServe(context.Background(), 8, summary); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"serve_p50_ms", "serve_p99_ms", "serve_cache_hit_rate",
		"serve_server_p50_ms", "serve_server_p99_ms",
		"serve_rps_q1", "serve_rps_q8", "serve_rps_q64"} {
		if _, ok := summary[key]; !ok {
			t.Errorf("summary missing %q: %v", key, summary)
		}
	}
	if p99 := summary["serve_p99_ms"].(float64); p99 <= 0 {
		t.Errorf("serve_p99_ms = %v, want > 0", p99)
	}
	if sp99 := summary["serve_server_p99_ms"].(float64); sp99 <= 0 {
		t.Errorf("serve_server_p99_ms = %v, want > 0", sp99)
	}
	if rate := summary["serve_cache_hit_rate"].(float64); rate <= 0 || rate > 1 {
		t.Errorf("serve_cache_hit_rate = %v, want in (0, 1]", rate)
	}
}

// TestServeTargetLine pins the loop finder against the stock kernel.
func TestServeTargetLine(t *testing.T) {
	if got := serveTargetLine("int x;\nfor (i = 0; ...\n"); got != 2 {
		t.Errorf("serveTargetLine = %d, want 2", got)
	}
	if got := serveTargetLine("no loop here"); got != 1 {
		t.Errorf("serveTargetLine fallback = %d, want 1", got)
	}
}
