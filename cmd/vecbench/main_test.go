package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func captureRun(t *testing.T, table, figure, n int) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(table, figure, n)
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestFigureOutputs(t *testing.T) {
	out := captureRun(t, 0, 1, 12)
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "Kumar") {
		t.Errorf("figure 1 output wrong:\n%s", out)
	}
	out = captureRun(t, 0, 2, 12)
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "Larus") {
		t.Errorf("figure 2 output wrong:\n%s", out)
	}
}

func captureCSV(t *testing.T, table, figure, n int) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := runCSV(table, figure, n)
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestCSVOutputs(t *testing.T) {
	out := captureCSV(t, 4, 0, 16)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 16 { // header + 5 studies × 3 machines
		t.Fatalf("table 4 CSV has %d lines, want 16", len(lines))
	}
	if lines[0] != "benchmark,machine,original_cycles,transformed_cycles,speedup" {
		t.Errorf("CSV header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		if strings.Count(l, ",") != 4 {
			t.Errorf("malformed CSV row %q", l)
		}
	}

	fig := captureCSV(t, 0, 1, 12)
	if !strings.HasPrefix(fig, "analysis,statement,partitions") {
		t.Errorf("figure CSV header wrong: %q", strings.SplitN(fig, "\n", 2)[0])
	}
}

func TestTableOutputs(t *testing.T) {
	out := captureRun(t, 2, 0, 16)
	if !strings.Contains(out, "Table 2") || !strings.Contains(out, "Gauss-Seidel") {
		t.Errorf("table 2 output wrong:\n%s", out)
	}
	out = captureRun(t, 3, 0, 16)
	if !strings.Contains(out, "Table 3") || !strings.Contains(out, "Pointer") {
		t.Errorf("table 3 output wrong:\n%s", out)
	}
	out = captureRun(t, 4, 0, 16)
	if !strings.Contains(out, "Table 4") || !strings.Contains(out, "Speedup") {
		t.Errorf("table 4 output wrong:\n%s", out)
	}
}
