package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/example/vectrace/internal/kernels"
	"github.com/example/vectrace/internal/obs"
	"github.com/example/vectrace/internal/server"
)

// serveDepths are the queue depths the -serve benchmark sweeps: serial
// admission, a typical small-tenant fan-in, and a saturated queue.
var serveDepths = []int{1, 8, 64}

// serveVariants is how many distinct job specs the benchmark cycles
// through. Each variant is a cache miss the first time a depth sees it
// and a hit afterwards, so the measured mix exercises both the compute
// path and the single-flight/cache path.
const serveVariants = 4

// serveResult aggregates one depth's measurements.
type serveResult struct {
	depth     int
	requests  int
	wall      time.Duration
	latencies []time.Duration
	hits      int64
	misses    int64
	// server is the service's own "job" latency histogram (submit to
	// terminal state, measured inside the server), the same distribution
	// vectraced exports at /metrics and /statsz. It is the server-side
	// counterpart to the client-observed latencies above.
	server obs.HistogramSnapshot
}

func (r *serveResult) percentile(p float64) time.Duration {
	if len(r.latencies) == 0 {
		return 0
	}
	i := int(p * float64(len(r.latencies)-1))
	return r.latencies[i]
}

// runServe benchmarks the vectraced service path end to end: a real HTTP
// listener in front of a server.Server, hit by `depth` concurrent clients
// submitting jobs and fetching reports, for each depth in serveDepths.
// Requests/s and p50/p99 job latency print per depth; the aggregate
// serve_p99_ms and serve_cache_hit_rate land in summary, which main folds
// into the stats config map (and so into BENCH_<rev>.json under -stats
// auto).
func runServe(ctx context.Context, n int, summary map[string]any) error {
	fmt.Printf("== Service throughput: %d requests per queue depth ==\n", n)
	fmt.Printf("%6s %9s %10s %10s %10s %10s %10s %9s\n",
		"depth", "req/s", "p50", "p99", "max", "srv-p50", "srv-p99", "hit-rate")

	var all []time.Duration
	var serverAgg obs.HistogramSnapshot
	var hits, misses int64
	for _, depth := range serveDepths {
		res, err := serveOneDepth(ctx, depth, n)
		if err != nil {
			return fmt.Errorf("serve depth %d: %w", depth, err)
		}
		rate := float64(0)
		if total := res.hits + res.misses; total > 0 {
			rate = float64(res.hits) / float64(total)
		}
		fmt.Printf("%6d %9.1f %10s %10s %10s %10s %10s %8.2f%%\n", depth,
			float64(res.requests)/res.wall.Seconds(),
			res.percentile(0.50).Round(time.Microsecond),
			res.percentile(0.99).Round(time.Microsecond),
			res.percentile(1.00).Round(time.Microsecond),
			res.server.Quantile(0.50).Round(time.Microsecond),
			res.server.Quantile(0.99).Round(time.Microsecond),
			100*rate)
		summary[fmt.Sprintf("serve_rps_q%d", depth)] = float64(res.requests) / res.wall.Seconds()
		summary[fmt.Sprintf("serve_p99_ms_q%d", depth)] = res.percentile(0.99).Seconds() * 1e3
		// A job's server-side lifetime (submit to terminal) nests inside the
		// client's round trip, so the server's median can never exceed the
		// slowest client observation. A violation means the two measurement
		// paths disagree — fail loudly rather than publish bogus numbers.
		if slack := 10 * time.Millisecond; res.server.Quantile(0.50) > res.percentile(1.00)+slack {
			return fmt.Errorf("depth %d: server-side p50 %v exceeds client max %v",
				depth, res.server.Quantile(0.50), res.percentile(1.00))
		}
		all = append(all, res.latencies...)
		serverAgg.Merge(res.server)
		hits += res.hits
		misses += res.misses
	}

	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	agg := serveResult{latencies: all}
	summary["serve_p50_ms"] = agg.percentile(0.50).Seconds() * 1e3
	summary["serve_p99_ms"] = agg.percentile(0.99).Seconds() * 1e3
	summary["serve_server_p50_ms"] = serverAgg.Quantile(0.50).Seconds() * 1e3
	summary["serve_server_p99_ms"] = serverAgg.Quantile(0.99).Seconds() * 1e3
	if total := hits + misses; total > 0 {
		summary["serve_cache_hit_rate"] = float64(hits) / float64(total)
	} else {
		summary["serve_cache_hit_rate"] = 0.0
	}
	return nil
}

// serveOneDepth measures one queue depth: a fresh server (cold cache),
// `depth` clients round-tripping n requests between them over real TCP.
func serveOneDepth(ctx context.Context, depth, n int) (*serveResult, error) {
	workers := depth
	if max := runtime.GOMAXPROCS(0); workers > max {
		workers = max
	}
	rec := obs.New()
	s := server.New(server.Config{
		Queue:        depth,
		Workers:      workers,
		CacheEntries: 2 * serveVariants,
		Recorder:     rec,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()

	bodies := make([][2]string, serveVariants) // contentType, body per variant
	for v := 0; v < serveVariants; v++ {
		ct, body, err := serveJobBody(v)
		if err != nil {
			return nil, err
		}
		bodies[v] = [2]string{ct, body}
	}

	res := &serveResult{depth: depth, requests: n, latencies: make([]time.Duration, n)}
	var wg sync.WaitGroup
	errs := make(chan error, depth)
	next := make(chan int)
	clientsDone := make(chan struct{}) // unblocks the feeder if every client errors out early
	go func() {
		defer close(next)
		for i := 0; i < n; i++ {
			select {
			case next <- i:
			case <-ctx.Done():
				return
			case <-clientsDone:
				return
			}
		}
	}()
	start := time.Now()
	for c := 0; c < depth; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{}
			for i := range next {
				v := bodies[i%serveVariants]
				t0 := time.Now()
				if err := serveOneRequest(ctx, client, base, v[0], v[1]); err != nil {
					errs <- fmt.Errorf("request %d: %w", i, err)
					return
				}
				res.latencies[i] = time.Since(t0)
			}
		}()
	}
	wg.Wait()
	close(clientsDone)
	res.wall = time.Since(start)

	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if derr := s.Drain(dctx); derr != nil {
		return nil, fmt.Errorf("drain: %w", derr)
	}
	hs.Close()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, context.Cause(ctx)
	}
	res.hits = rec.Get(obs.CacheHits)
	res.misses = rec.Get(obs.CacheMisses)
	// Snapshot after Drain: every job has reached a terminal state, so the
	// server's "job" histogram covers all n requests.
	res.server, _ = rec.HistSnapshot("job")
	sort.Slice(res.latencies, func(i, j int) bool { return res.latencies[i] < res.latencies[j] })
	return res, nil
}

// serveJobBody builds the multipart submission for one spec variant: the
// Listing 1 kernel under a variant-specific filename, so each variant is
// its own cache key.
func serveJobBody(variant int) (string, string, error) {
	k := kernels.Listing1(32)
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	cfg, err := json.Marshal(map[string]any{
		"filename": fmt.Sprintf("listing1-v%d.c", variant),
		"line":     serveTargetLine(k.Source),
		"instance": -1,
	})
	if err != nil {
		return "", "", err
	}
	w, err := mw.CreateFormField("config")
	if err != nil {
		return "", "", err
	}
	w.Write(cfg)
	w, err = mw.CreateFormField("source")
	if err != nil {
		return "", "", err
	}
	w.Write([]byte(k.Source))
	if err := mw.Close(); err != nil {
		return "", "", err
	}
	return mw.FormDataContentType(), buf.String(), nil
}

// serveTargetLine finds the first for-loop line in src — the analysis
// target every benchmark request points at.
func serveTargetLine(src string) int {
	line := 1
	for i := 0; i+3 < len(src); i++ {
		if src[i] == '\n' {
			line++
		}
		if src[i] == 'f' && src[i+1] == 'o' && src[i+2] == 'r' && (src[i+3] == ' ' || src[i+3] == '(') {
			return line
		}
	}
	return 1
}

// serveOneRequest is one full client round trip: submit, then fetch the
// report with wait=1 and check it is a non-empty regions document.
func serveOneRequest(ctx context.Context, client *http.Client, base, ct, body string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", bytes.NewReader([]byte(body)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", ct)
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	sub, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submission answered %d: %s", resp.StatusCode, sub)
	}
	var doc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(sub, &doc); err != nil {
		return fmt.Errorf("submission body: %w", err)
	}
	req, err = http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+doc.ID+"/report?wait=1", nil)
	if err != nil {
		return err
	}
	rr, err := client.Do(req)
	if err != nil {
		return err
	}
	rep, err := io.ReadAll(rr.Body)
	rr.Body.Close()
	if err != nil {
		return err
	}
	if rr.StatusCode != http.StatusOK {
		return fmt.Errorf("report answered %d: %s", rr.StatusCode, rep)
	}
	if !bytes.Contains(rep, []byte(`"regions"`)) {
		return fmt.Errorf("report is not a regions document: %.120s", rep)
	}
	return nil
}
