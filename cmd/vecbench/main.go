// Command vecbench regenerates every table and figure from the paper's
// evaluation section (§4) and prints them in the paper's column layout.
//
// Usage:
//
//	vecbench             regenerate everything
//	vecbench -table 1    one table (1–4)
//	vecbench -figure 2   one figure (1–2)
//	vecbench -workers 4  table rows analyzed by a 4-worker pool
//	vecbench -scan 512   trace scan throughput: VTR1 sequential vs VTR2 indexed
//
// The -scan mode records a synthetic multi-region trace in both formats and
// times the sequential VTR1 scanner against VTR2 indexed scans at doubling
// worker counts (-block/-compress pick the container encoding, -scan-workers
// caps the fan-out), cross-checking every run against the VTR1 baseline.
//
// Profiling: -cpuprofile, -memprofile, and -trace write the standard
// runtime profiles for the whole run (view with go tool pprof / trace).
// A wall-clock budget for the whole regeneration comes from -timeout; on
// expiry the analyses stop cooperatively and the tool exits nonzero with an
// error wrapping context.DeadlineExceeded.
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"github.com/example/vectrace/internal/core"
	"github.com/example/vectrace/internal/diag"
	"github.com/example/vectrace/internal/report"
	"github.com/example/vectrace/internal/trace"
)

func main() {
	table := flag.Int("table", 0, "regenerate only this table (1-4)")
	figure := flag.Int("figure", 0, "regenerate only this figure (1-2)")
	n := flag.Int("n", 16, "problem size for the figures")
	csvOut := flag.Bool("csv", false, "emit machine-readable CSV instead of the paper layout")
	workers := flag.Int("workers", 0, "analysis worker count (0 = GOMAXPROCS)")
	scan := flag.Int("scan", 0, "benchmark scan throughput on a trace with this many dynamic `regions` (0 = off)")
	interpN := flag.Int("interp", 0, "benchmark interpreter dispatch (plan vs oracle) at this problem `size` (0 = off)")
	serveN := flag.Int("serve", 0, "benchmark the vectraced service path with this many `requests` per queue depth (0 = off)")
	var tf diag.TraceFormat
	tf.Register(flag.CommandLine, "trace-format", trace.FormatVTR2, true)
	var prof diag.Flags
	prof.Register(flag.CommandLine, "trace")
	var timeout diag.Timeout
	timeout.Register(flag.CommandLine)
	obsFlags := diag.Obs{Tool: "vecbench"}
	obsFlags.Register(flag.CommandLine)
	flag.Parse()

	if err := tf.Validate(false); err != nil {
		fmt.Fprintln(os.Stderr, "vecbench:", err)
		os.Exit(2)
	}
	if err := obsFlags.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "vecbench:", err)
		os.Exit(1)
	}
	if err := prof.Start(); err != nil {
		obsFlags.Stop(nil)
		fmt.Fprintln(os.Stderr, "vecbench:", err)
		os.Exit(1)
	}
	ctx, cancel := timeout.Context(obsFlags.Context(context.Background()))
	defer cancel()
	opts := core.Options{Workers: *workers}
	interpSummary := map[string]any{}
	var err error
	switch {
	case *serveN > 0:
		err = runServe(ctx, *serveN, interpSummary)
	case *interpN > 0:
		err = runInterp(ctx, *interpN, interpSummary)
	case *scan > 0:
		err = runScan(ctx, *scan, opts, tf)
	case *csvOut:
		err = runCSV(ctx, *table, *figure, *n, opts)
	default:
		err = run(ctx, *table, *figure, *n, opts)
	}
	if serr := prof.Stop(); err == nil {
		err = serr
	}
	config := map[string]any{
		"table": *table, "figure": *figure, "n": *n,
		"workers": opts.WorkerCount(), "csv": *csvOut,
	}
	if *scan > 0 {
		config["scan"] = *scan
		config["trace_format"] = tf.Format
		config["scan_workers"] = tf.ScanWorkers
	}
	if *interpN > 0 {
		config["interp"] = *interpN
		for k, v := range interpSummary {
			config[k] = v
		}
	}
	if *serveN > 0 {
		config["serve"] = *serveN
		for k, v := range interpSummary {
			config[k] = v
		}
	}
	if serr := obsFlags.Stop(config); err == nil {
		err = serr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vecbench:", err)
		os.Exit(1)
	}
}

// runCSV emits the requested artifacts as CSV on stdout, one artifact per
// invocation (use -table/-figure to select; default regenerates Table 1).
func runCSV(ctx context.Context, table, figure, n int, opts core.Options) error {
	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

	switch {
	case figure == 1 || figure == 2:
		var rows []report.FigureRow
		var err error
		if figure == 1 {
			rows, err = report.Figure1(n)
		} else {
			rows, err = report.Figure2(n)
		}
		if err != nil {
			return err
		}
		w.Write([]string{"analysis", "statement", "partitions", "avg_size", "max_size"})
		for _, r := range rows {
			w.Write([]string{r.Analysis, r.Statement, strconv.Itoa(r.Partitions), f(r.AvgSize), strconv.Itoa(r.MaxSize)})
		}
	case table == 2:
		rows, err := report.Table2Ctx(ctx, opts)
		if err != nil {
			return err
		}
		w.Write([]string{"benchmark", "packed_pct", "avg_concurrency", "unit_pct", "unit_size", "nonunit_pct", "nonunit_size"})
		for _, r := range rows {
			w.Write([]string{r.Benchmark, f(r.PercentPacked), f(r.AvgConcurrency), f(r.UnitPct), f(r.UnitSize), f(r.NonUnitPct), f(r.NonUnitSize)})
		}
	case table == 3:
		rows, err := report.Table3Ctx(ctx, opts)
		if err != nil {
			return err
		}
		w.Write([]string{"benchmark", "style", "packed_pct", "avg_concurrency", "unit_pct", "unit_size", "nonunit_pct", "nonunit_size"})
		for _, r := range rows {
			w.Write([]string{r.Benchmark, r.Style, f(r.PercentPacked), f(r.AvgConcurrency), f(r.UnitPct), f(r.UnitSize), f(r.NonUnitPct), f(r.NonUnitSize)})
		}
	case table == 4:
		rows, err := report.Table4Ctx(ctx)
		if err != nil {
			return err
		}
		w.Write([]string{"benchmark", "machine", "original_cycles", "transformed_cycles", "speedup"})
		for _, r := range rows {
			w.Write([]string{r.Benchmark, r.Machine, f(r.OriginalTime), f(r.TransformedTime), f(r.Speedup)})
		}
	default:
		rows, err := report.Table1Ctx(ctx, opts)
		if err != nil {
			return err
		}
		w.Write([]string{"benchmark", "loop", "cycles_pct", "packed_pct", "avg_concurrency", "unit_pct", "unit_size", "nonunit_pct", "nonunit_size"})
		for _, r := range rows {
			w.Write([]string{r.Benchmark, r.Loop, f(r.PercentCycles), f(r.PercentPacked), f(r.AvgConcurrency), f(r.UnitPct), f(r.UnitSize), f(r.NonUnitPct), f(r.NonUnitSize)})
		}
	}
	return nil
}

func run(ctx context.Context, table, figure, n int, opts core.Options) error {
	all := table == 0 && figure == 0

	if all || figure == 1 {
		rows, err := report.Figure1(n)
		if err != nil {
			return err
		}
		fmt.Printf("== Figure 1: partitions of Listing 1 (N=%d): Algorithm 1 vs Kumar ==\n", n)
		fmt.Print(report.RenderFigure(rows))
		fmt.Println()
	}
	if all || figure == 2 {
		rows, err := report.Figure2(n)
		if err != nil {
			return err
		}
		fmt.Printf("== Figure 2: partitions of Listing 2 (N=%d): Algorithm 1 vs Larus ==\n", n)
		fmt.Print(report.RenderFigure(rows))
		fmt.Println()
	}
	if all || table == 1 {
		rows, err := report.Table1Ctx(ctx, opts)
		if err != nil {
			return err
		}
		fmt.Println("== Table 1: SPEC CFP2006 hot-loop characterization ==")
		fmt.Print(report.RenderTable1(rows))
		fmt.Println()
	}
	if all || table == 2 {
		rows, err := report.Table2Ctx(ctx, opts)
		if err != nil {
			return err
		}
		fmt.Println("== Table 2: stand-alone computation kernels ==")
		fmt.Print(report.RenderTable2(rows))
		fmt.Println()
	}
	if all || table == 3 {
		rows, err := report.Table3Ctx(ctx, opts)
		if err != nil {
			return err
		}
		fmt.Println("== Table 3: UTDSP array-based vs pointer-based code ==")
		fmt.Print(report.RenderTable3(rows))
		fmt.Println()
	}
	if all || table == 4 {
		rows, err := report.Table4Ctx(ctx)
		if err != nil {
			return err
		}
		fmt.Println("== Table 4: case-study speedups (modeled machines) ==")
		fmt.Print(report.RenderTable4(rows))
		fmt.Println()
	}
	return nil
}
