package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleProgram = `
double a[64];
double b[64];
double s;

void main() {
  int i;
  for (i = 0; i < 64; i++) {
    a[i] = 0.5 * i;
  }
  for (i = 0; i < 64; i++) {
    b[i] = 2.0 * a[i] + 1.0;
  }
  for (i = 0; i < 64; i++) {
    s = s + b[i];
  }
  print(s);
}
`

// writeSample writes the sample program to a temp file and returns its path.
func writeSample(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "sample.c")
	if err := os.WriteFile(path, []byte(sampleProgram), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// capture runs the CLI entry with stdout redirected.
func capture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(args)
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

func TestRunCommand(t *testing.T) {
	out, err := capture(t, "run", writeSample(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "instructions") {
		t.Errorf("missing stats line:\n%s", out)
	}
	// The program prints one value: sum of b = sum(2*0.5*i + 1) = 64 + sum(i).
	if !strings.Contains(out, "2080") {
		t.Errorf("expected printed sum 2080 in output:\n%s", out)
	}
}

func TestIRCommand(t *testing.T) {
	out, err := capture(t, "ir", writeSample(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"func main", "loop.begin", "mul.f64", "store.f64"} {
		if !strings.Contains(out, want) {
			t.Errorf("IR dump missing %q", want)
		}
	}
}

func TestProfileCommand(t *testing.T) {
	out, err := capture(t, "profile", writeSample(t), "-threshold", "5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cycles%") || !strings.Contains(out, "main") {
		t.Errorf("profile output wrong:\n%s", out)
	}
}

func TestVectorizeCommand(t *testing.T) {
	out, err := capture(t, "vectorize", writeSample(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "VECTORIZED") {
		t.Errorf("expected at least one vectorized loop:\n%s", out)
	}
	if !strings.Contains(out, "(reduction)") {
		t.Errorf("expected the sum loop to vectorize as a reduction:\n%s", out)
	}
}

func TestAnalyzeCommand(t *testing.T) {
	path := writeSample(t)
	out, err := capture(t, "analyze", path, "-line", "11", "-baselines")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "unit-stride") || !strings.Contains(out, "kumar") {
		t.Errorf("analyze output wrong:\n%s", out)
	}
	// Whole-program analysis without -line.
	out, err = capture(t, "analyze", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fp-ops") {
		t.Errorf("whole-program analyze output wrong:\n%s", out)
	}
}

// TestAnalyzeWorkersFlag pins the -workers determinism contract at the CLI
// boundary: the report printed by a 4-worker pool must be byte-identical to
// the sequential (-workers 1) run.
func TestAnalyzeWorkersFlag(t *testing.T) {
	path := writeSample(t)
	seq, err := capture(t, "analyze", path, "-line", "11", "-workers", "1")
	if err != nil {
		t.Fatal(err)
	}
	par, err := capture(t, "analyze", path, "-line", "11", "-workers", "4")
	if err != nil {
		t.Fatal(err)
	}
	if seq != par {
		t.Fatalf("parallel analyze differs from sequential:\nseq:\n%s\npar:\n%s", seq, par)
	}
}

// TestAnalyzeAllRegions exercises -instance -1: every dynamic execution of
// the loop is analyzed and printed with a region banner.
func TestAnalyzeAllRegions(t *testing.T) {
	path := writeSample(t)
	out, err := capture(t, "analyze", path, "-line", "11", "-instance", "-1", "-workers", "2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "== region 1/1:") {
		t.Errorf("missing region banner:\n%s", out)
	}
	if !strings.Contains(out, "unit-stride") {
		t.Errorf("missing per-region report body:\n%s", out)
	}
}

func TestRankCommand(t *testing.T) {
	out, err := capture(t, "rank", writeSample(t), "-threshold", "5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "score") {
		t.Errorf("rank output wrong:\n%s", out)
	}
}

func TestTraceCommand(t *testing.T) {
	path := writeSample(t)
	outFile := filepath.Join(t.TempDir(), "t.vtr")
	out, err := capture(t, "trace", path, "-o", outFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wrote") {
		t.Errorf("trace output wrong:\n%s", out)
	}
	data, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 4 || string(data[:4]) != "VTR1" {
		t.Error("trace file missing magic header")
	}
}

func TestAnnotateCommand(t *testing.T) {
	out, err := capture(t, "annotate", writeSample(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, ";; fp×") {
		t.Errorf("annotated source missing annotations:\n%s", out)
	}
	if !strings.Contains(out, "reduction") {
		t.Errorf("sum line should carry the reduction tag:\n%s", out)
	}
	// Every source line appears.
	if !strings.Contains(out, "void main()") {
		t.Error("source text missing from the listing")
	}
}

func TestTreeCommand(t *testing.T) {
	out, err := capture(t, "tree", writeSample(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "verdict") || !strings.Contains(out, "vectorized") {
		t.Errorf("tree output wrong:\n%s", out)
	}
	if strings.Count(out, "main:") != 3 {
		t.Errorf("expected 3 loops in the tree:\n%s", out)
	}
}

// TestAnalyzeFromSavedTrace verifies the offline workflow: the report from
// a decoded on-disk trace is byte-identical to the live-instrumentation
// report.
func TestAnalyzeFromSavedTrace(t *testing.T) {
	path := writeSample(t)
	traceFile := filepath.Join(t.TempDir(), "s.vtr")
	if _, err := capture(t, "trace", path, "-o", traceFile); err != nil {
		t.Fatal(err)
	}
	live, err := capture(t, "analyze", path, "-line", "11")
	if err != nil {
		t.Fatal(err)
	}
	offline, err := capture(t, "analyze", path, "-line", "11", "-trace", traceFile)
	if err != nil {
		t.Fatal(err)
	}
	if live != offline {
		t.Fatalf("offline analysis differs from live:\nlive:\n%s\noffline:\n%s", live, offline)
	}
}

func TestSpeedupCommand(t *testing.T) {
	dir := t.TempDir()
	orig := filepath.Join(dir, "orig.c")
	trans := filepath.Join(dir, "trans.c")
	// Column-major walk vs row-major walk of the same computation.
	if err := os.WriteFile(orig, []byte(`
double A[32][32];
void main() {
  int i;
  int j;
  for (i = 0; i < 32; i++) { for (j = 0; j < 32; j++) { A[i][j] = 0.01 * (i + j); } }
  for (j = 0; j < 32; j++) {
    for (i = 0; i < 32; i++) { A[i][j] = A[i][j] * 2.0; }
  }
  print(A[3][7]);
}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(trans, []byte(`
double A[32][32];
void main() {
  int i;
  int j;
  for (i = 0; i < 32; i++) { for (j = 0; j < 32; j++) { A[i][j] = 0.01 * (i + j); } }
  for (i = 0; i < 32; i++) {
    for (j = 0; j < 32; j++) { A[i][j] = A[i][j] * 2.0; }
  }
  print(A[3][7]);
}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, "speedup", orig, trans)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "outputs match") || !strings.Contains(out, "speedup") {
		t.Errorf("speedup output wrong:\n%s", out)
	}
	// All three machines present.
	for _, m := range []string{"Xeon", "2600K", "Phenom"} {
		if !strings.Contains(out, m) {
			t.Errorf("missing machine %s:\n%s", m, out)
		}
	}

	// Non-equivalent versions are rejected.
	bad := filepath.Join(dir, "bad.c")
	if err := os.WriteFile(bad, []byte(`
void main() { print(42.0); }
`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, "speedup", orig, bad); err == nil || !strings.Contains(err.Error(), "not equivalent") {
		t.Errorf("non-equivalent versions should be rejected, got %v", err)
	}
}

func TestUsageErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no-args should error")
	}
	if err := run([]string{"frobnicate", writeSample(t)}); err == nil {
		t.Error("unknown command should error")
	}
	if err := run([]string{"run", "/nonexistent.c"}); err == nil {
		t.Error("missing file should error")
	}
}

func TestCompileErrorSurfaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.c")
	if err := os.WriteFile(path, []byte("void main() { x = 1; }"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"run", path}); err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Errorf("compile error not surfaced: %v", err)
	}
}

// TestExitCodes pins the scripting contract: usage errors exit 2, analysis
// errors exit 1, success exits 0.
func TestExitCodes(t *testing.T) {
	path := writeSample(t)
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"success", []string{"profile", path}, 0},
		{"no subcommand", nil, 2},
		{"unknown subcommand", []string{"frobnicate"}, 2},
		{"unknown flag", []string{"analyze", path, "-no-such-flag"}, 2},
		{"missing file", []string{"profile", filepath.Join(t.TempDir(), "absent.c")}, 1},
		{"no loop on line", []string{"analyze", path, "-line", "4"}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := capture(t, tc.args...)
			got := 0
			if err != nil {
				got = exitCode(err)
			}
			if got != tc.want {
				t.Fatalf("args %v: exit code %d (err %v), want %d", tc.args, got, err, tc.want)
			}
		})
	}
}

// TestCorruptTraceDiagnostics checks that analyzing a damaged trace file
// exits with an analysis error naming the byte offset and region index.
func TestCorruptTraceDiagnostics(t *testing.T) {
	path := writeSample(t)
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "s.vtr")
	if _, err := capture(t, "record", path, "-o", tracePath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tracePath, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = capture(t, "analyze", path, "-trace", tracePath, "-line", "8", "-instance", "-1")
	if err == nil {
		t.Fatal("truncated trace analyzed without error")
	}
	if exitCode(err) != 1 {
		t.Fatalf("exit code %d, want 1", exitCode(err))
	}
	for _, want := range []string{"byte offset", "scanning region"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not contain %q", err, want)
		}
	}
}
