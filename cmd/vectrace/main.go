// Command vectrace is the reproduction's command-line front end: it
// compiles MiniC programs, executes them under instrumentation, and runs
// the paper's dynamic vectorization-potential analysis plus the supporting
// static analyses.
//
// Usage:
//
//	vectrace run file.c              execute and print program output
//	vectrace ir file.c               dump the VIR module
//	vectrace profile file.c          hot-loop cycle profile (HPCToolkit stand-in)
//	vectrace vectorize file.c        static auto-vectorizer verdicts (icc stand-in)
//	vectrace analyze file.c -line N  dynamic analysis of the loop on line N
//	                                 (-instance -1 analyzes every dynamic
//	                                 region; -workers sets the pool size)
//	vectrace rank file.c             rank hot loops by unexploited potential
//	vectrace annotate file.c         per-line vectorization-potential listing
//	vectrace tree file.c             run-time loop tree with profile + verdicts
//	vectrace record file.c -o t.vtr  stream the execution trace to disk
//	                                 ("trace" is the legacy alias)
//	vectrace speedup a.c b.c         verify equivalence, model the speedup
//
// Recording streams VTR1 events to disk as the program executes, and
// "analyze -trace file.vtr -line N" replays regions from disk one at a
// time, so neither side ever materializes the full trace in memory.
// "record -format vtr2" instead writes the indexed, compressed VTR2
// container (block-compressed events plus a region index in the footer);
// analyze sniffs the format, seeks straight to the requested -instance
// through the index, and fans "-instance -1" region scans across
// -scan-workers. Old VTR1 files keep working unchanged.
//
// Profiling the analysis itself: analyze accepts -cpuprofile and
// -memprofile (pprof format) and -exectrace (go tool trace format); the
// profile brackets compilation, tracing, and analysis. The execution-trace
// flag is -exectrace here because -trace names the input trace file.
//
// Failure surface: analyze accepts -timeout, a wall-clock budget enforced
// by cooperative cancellation through the interpreter, trace scanner, and
// analysis pool; on expiry the error wraps context.DeadlineExceeded. The
// process exits 1 on analysis errors (corrupt traces name the byte offset
// and region index) and 2 on usage errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"

	"github.com/example/vectrace/internal/baseline"
	"github.com/example/vectrace/internal/core"
	"github.com/example/vectrace/internal/ddg"
	"github.com/example/vectrace/internal/diag"
	"github.com/example/vectrace/internal/interp"
	"github.com/example/vectrace/internal/ir"
	"github.com/example/vectrace/internal/obs"
	"github.com/example/vectrace/internal/opt"
	"github.com/example/vectrace/internal/pipeline"
	"github.com/example/vectrace/internal/profile"
	"github.com/example/vectrace/internal/report"
	"github.com/example/vectrace/internal/simd"
	"github.com/example/vectrace/internal/staticvec"
	"github.com/example/vectrace/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vectrace:", err)
		os.Exit(exitCode(err))
	}
}

// usageError marks errors caused by the command line itself (unknown
// subcommand, bad flags) rather than by the analysis; they exit with status
// 2, following the convention the flag package's ExitOnError mode uses,
// while analysis failures exit 1.
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

// exitCode maps an error to the process exit status: 2 for usage errors,
// 1 for everything else.
func exitCode(err error) int {
	var ue usageError
	if errors.As(err, &ue) {
		return 2
	}
	return 1
}

// parseFlags runs fs.Parse and classifies a failure as a usage error.
func parseFlags(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	return nil
}

func usage() error {
	return usageError{fmt.Errorf("usage: vectrace {run|ir|profile|vectorize|analyze|rank|annotate|tree|record|trace|speedup} file.c [flags]")}
}

func run(args []string) error {
	if len(args) < 2 {
		return usage()
	}
	cmd, file := args[0], args[1]
	rest := args[2:]

	if cmd == "speedup" {
		return speedupCmd(file, rest)
	}

	src, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	if cmd == "analyze" {
		// analyze owns its compilation: the front end must run inside the
		// observability context so -stats and -exectrace see the parse,
		// check, and lower stages.
		return analyzeCmd(file, string(src), rest)
	}
	mod, err := pipeline.Compile(file, string(src))
	if err != nil {
		return err
	}

	switch cmd {
	case "run":
		fs := flag.NewFlagSet("run", flag.ContinueOnError)
		optimize := fs.Bool("O", false, "run constant folding, branch simplification, and DCE first")
		if err := parseFlags(fs, rest); err != nil {
			return err
		}
		if *optimize {
			opt.Optimize(mod)
		}
		res, err := pipeline.Run(mod, false)
		if err != nil {
			return err
		}
		for _, v := range res.Output {
			fmt.Printf("%g\n", v)
		}
		fmt.Printf("# %d instructions, %d simulated cycles, %d fp ops\n",
			res.Steps, res.Cycles, res.FPOps)
		return nil

	case "ir":
		fmt.Print(mod.String())
		return nil

	case "profile":
		fs := flag.NewFlagSet("profile", flag.ContinueOnError)
		threshold := fs.Float64("threshold", 10, "hot-loop cycle percentage threshold")
		if err := parseFlags(fs, rest); err != nil {
			return err
		}
		res, err := pipeline.Run(mod, true)
		if err != nil {
			return err
		}
		verdicts := staticvec.AnalyzeModule(mod)
		prof := profile.Build(mod, res, verdicts)
		fmt.Printf("%-24s %8s %10s %8s %9s\n", "loop", "line", "cycles%", "fp-ops", "packed%")
		for _, st := range prof.Hot(*threshold) {
			fmt.Printf("%-24s %8d %9.1f%% %8d %8.1f%%\n",
				st.Func, st.Line, st.PercentCycles, st.FPOps, st.PercentPacked())
		}
		return nil

	case "vectorize":
		verdicts := staticvec.AnalyzeModule(mod)
		for _, lm := range mod.Loops {
			v, ok := verdicts[lm.ID]
			if !ok {
				continue // not innermost
			}
			status := "NOT VECTORIZED: " + v.Reason
			if v.Vectorized {
				status = "VECTORIZED"
				if v.Reduction {
					status += " (reduction)"
				}
			}
			fmt.Printf("%s:%d (%s): %s\n", file, lm.Line, lm.Func, status)
		}
		return nil

	case "annotate":
		fs := flag.NewFlagSet("annotate", flag.ContinueOnError)
		relax := fs.Bool("relax-reductions", false, "ignore reduction-carried dependences")
		if err := parseFlags(fs, rest); err != nil {
			return err
		}
		_, tr, err := pipeline.Trace(mod)
		if err != nil {
			return err
		}
		anns, err := report.AnnotateSource(tr, core.Options{RelaxReductions: *relax})
		if err != nil {
			return err
		}
		fmt.Print(report.RenderAnnotatedSource(string(src), anns))
		return nil

	case "tree":
		res, err := pipeline.Run(mod, true)
		if err != nil {
			return err
		}
		roots := report.LoopTree(mod, res, staticvec.AnalyzeModule(mod))
		fmt.Print(report.RenderLoopTree(roots))
		return nil

	case "rank":
		fs := flag.NewFlagSet("rank", flag.ContinueOnError)
		threshold := fs.Float64("threshold", 10, "hot-loop cycle percentage threshold")
		if err := parseFlags(fs, rest); err != nil {
			return err
		}
		res, tr, err := pipeline.Trace(mod)
		if err != nil {
			return err
		}
		rows, err := report.RankOpportunities(mod, res, tr, *threshold)
		if err != nil {
			return err
		}
		fmt.Print(report.RenderOpportunities(rows))
		return nil

	case "record", "trace":
		// "record" streams events to disk as the program runs — the trace
		// is never materialized in memory. "trace" is the legacy name for
		// the same operation. -format vtr2 writes the indexed, compressed
		// container (seekable regions, parallel scanning); the default
		// stays vtr1 so existing consumers keep working.
		fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
		out := fs.String("o", "trace.vtr", "output trace file")
		var tf diag.TraceFormat
		tf.Register(fs, "format", trace.FormatVTR1, false)
		if err := parseFlags(fs, rest); err != nil {
			return err
		}
		if err := tf.Validate(false); err != nil {
			return usageError{err}
		}
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		var res *interp.Result
		if tf.Format == trace.FormatVTR2 {
			res, err = pipeline.RecordContainer(mod, f, tf.ContainerOptions())
		} else {
			res, err = pipeline.Record(mod, f)
		}
		if err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d events to %s (%s)\n", res.Steps, *out, tf.Format)
		return nil
	}
	return usage()
}

// analyzeCmd is the "analyze" subcommand. Profiling (-cpuprofile,
// -memprofile, -exectrace) brackets the whole analysis, so the body runs in
// a closure and the profilers are flushed on every exit path. The
// execution-trace flag is -exectrace because -trace already names the
// input-trace file here. Observability (-stats, -progress, -debug-addr)
// brackets the same scope: the recorder rides the context through
// compilation, tracing, scanning, and analysis, and the RunStats document
// is written after the profilers stop.
func analyzeCmd(file, src string, rest []string) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	line := fs.Int("line", 0, "source line of the loop to analyze")
	instance := fs.Int("instance", 0, "which dynamic execution of the loop to analyze (-1 = all)")
	relax := fs.Bool("relax-reductions", false, "ignore reduction-carried dependences")
	compare := fs.Bool("baselines", false, "also run the Kumar critical-path baseline")
	traceFile := fs.String("trace", "", "analyze a previously saved trace instead of re-executing")
	intOps := fs.Bool("int-ops", false, "also characterize integer add/sub/mul")
	workers := fs.Int("workers", 0, "analysis worker count (0 = GOMAXPROCS)")
	tile := fs.Int("tile", 0, "candidates per fused Algorithm-1 pass (0 = auto, <0 = per-candidate kernel)")
	jsonOut := fs.Bool("json", false, "emit the canonical analysis JSON instead of text (requires -line; excludes -baselines)")
	dispatch := fs.String("dispatch", "plan", "interpreter dispatch engine: plan (precompiled) or oracle (legacy switch loop)")
	shadow := fs.String("shadow", "paged", "stream-kernel shadow memory: paged (two-level pages) or map (legacy oracle)")
	var tf diag.TraceFormat
	tf.Register(fs, "trace-format", "auto", true)
	var prof diag.Flags
	prof.Register(fs, "exectrace")
	var timeout diag.Timeout
	timeout.Register(fs)
	obsFlags := diag.Obs{Tool: "vectrace analyze"}
	obsFlags.Register(fs)
	if err := parseFlags(fs, rest); err != nil {
		return err
	}
	opts := ddg.Options{CharacterizeInts: *intOps}
	copts := core.Options{RelaxReductions: *relax, Workers: *workers, TileSize: *tile}
	switch *dispatch {
	case "plan":
	case "oracle":
		copts.OracleDispatch = true
	default:
		return usageError{fmt.Errorf("-dispatch must be plan or oracle, got %q", *dispatch)}
	}
	switch *shadow {
	case "paged":
	case "map":
		copts.MapShadow = true
	default:
		return usageError{fmt.Errorf("-shadow must be paged or map, got %q", *shadow)}
	}
	if err := tf.Validate(true); err != nil {
		return usageError{err}
	}
	if *jsonOut {
		// The JSON contract covers region analyses (internal/report); the
		// whole-program graph and the Kumar baseline stay text-only.
		if *line == 0 {
			return usageError{fmt.Errorf("-json requires -line")}
		}
		if *compare {
			return usageError{fmt.Errorf("-json and -baselines are mutually exclusive")}
		}
	}
	if err := obsFlags.Start(); err != nil {
		return err
	}
	rec := obsFlags.Recorder()
	ctx, cancel := timeout.Context(obsFlags.Context(context.Background()))
	defer cancel()

	if err := prof.Start(); err != nil {
		obsFlags.Stop(nil)
		return err
	}
	err := func() error {
		mod, err := pipeline.CompileCtx(ctx, file, src)
		if err != nil {
			return err
		}
		// printRegions and printGraph share the output layout between the
		// streaming and in-memory paths, keeping them byte-identical. A
		// region that failed prints a one-line diagnostic in place of its
		// report — the remaining regions still print in full, and the joined
		// error (returned by the caller) makes the exit status nonzero.
		// Region failures are additionally condensed into one stderr line
		// (count, first error, corrupt byte offset when the trace itself was
		// damaged), so a long report still ends with a usable diagnostic.
		printRegions := func(regs []pipeline.RegionReport, err error) {
			_, sp := obs.StartSpan(ctx, "report")
			defer sp.End()
			if *jsonOut {
				// Canonical JSON shared with vectraced: the service's job
				// results are byte-identical to this output.
				js, jerr := report.RegionsJSON(regs)
				if jerr != nil {
					fmt.Fprintln(os.Stderr, "vectrace: analyze:", jerr)
					return
				}
				os.Stdout.Write(js)
				return
			}
			for _, rr := range regs {
				fmt.Printf("== region %d/%d: %d events ==\n", rr.Index+1, len(regs), rr.Events)
				if rr.Err != nil {
					fmt.Printf("error: %v\n", rr.Err)
					continue
				}
				fmt.Print(rr.Report.String())
			}
			failed := 0
			var first error
			for _, rr := range regs {
				if rr.Err != nil {
					failed++
					if first == nil {
						first = rr.Err
					}
				}
			}
			off, corrupt := trace.CorruptOffset(err)
			if failed == 0 && !corrupt {
				return
			}
			summary := fmt.Sprintf("vectrace: analyze: %d/%d regions failed", failed, len(regs))
			if first != nil {
				summary += fmt.Sprintf("; first: %v", first)
			}
			if corrupt {
				summary += fmt.Sprintf("; trace corrupt at byte offset %d", off)
			}
			fmt.Fprintln(os.Stderr, summary)
		}
		// printRegionJSON is the single-instance JSON path: it analyzes the
		// region through pipeline.AnalyzeRegion — the exact call the
		// vectraced job engine makes — so the output bytes match the
		// service's for the same submission.
		printRegionJSON := func(sub *trace.Trace, idx int) error {
			rep, aerr := pipeline.AnalyzeRegion(ctx, sub, opts, copts)
			rr := pipeline.RegionReport{Index: idx, Events: sub.Len(), Report: rep}
			if aerr != nil {
				rr.Err = fmt.Errorf("pipeline: region %d: %w", idx, aerr)
			}
			js, jerr := report.RegionsJSON([]pipeline.RegionReport{rr})
			if jerr != nil {
				return jerr
			}
			_, sp := obs.StartSpan(ctx, "report")
			defer sp.End()
			os.Stdout.Write(js)
			return rr.Err
		}
		printGraph := func(g *ddg.Graph) error {
			rep, err := core.AnalyzeCtx(ctx, g, copts)
			if err != nil {
				return err
			}
			_, sp := obs.StartSpan(ctx, "report")
			defer sp.End()
			fmt.Print(rep.String())
			if *compare {
				p := baseline.Kumar(g)
				fmt.Printf("kumar: critical path %d, avg parallelism %.1f\n",
					p.CriticalPath, p.AvgParallelism)
			}
			return nil
		}
		// openTrace opens and format-sniffs the input trace, with its bytes
		// counted into the recorder (and its size recorded, for percent-done
		// and ETA). VTR1 files stream through the classic decoder; VTR2 files
		// expose their footer index for seeks and parallel scanning, falling
		// back to a sequential salvage walk (with a warning) when the index
		// is damaged.
		openTrace := func() (*os.File, *trace.Opened, error) {
			f, err := os.Open(*traceFile)
			if err != nil {
				return nil, nil, err
			}
			fi, err := f.Stat()
			if err != nil {
				f.Close()
				return nil, nil, err
			}
			rec.Set(obs.TraceBytesTotal, fi.Size())
			o, err := trace.OpenTrace(f, fi.Size(), rec)
			if err != nil {
				f.Close()
				return nil, nil, err
			}
			if err := tf.CheckOpened(o); err != nil {
				f.Close()
				return nil, nil, usageError{err}
			}
			if o.IndexErr != nil {
				fmt.Fprintf(os.Stderr, "vectrace: analyze: trace index unusable (%v); scanning sequentially\n", o.IndexErr)
			}
			return f, o, nil
		}

		if *traceFile != "" && *line != 0 {
			// Offline mode, the paper's workflow: the instrumented run wrote
			// the trace to disk; analysis replays it against the same module.
			// Sequential streams keep memory bounded by the largest region;
			// indexed containers additionally seek and fan out (-scan-workers).
			f, o, err := openTrace()
			if err != nil {
				return err
			}
			defer f.Close()
			if *instance < 0 {
				regs, err := pipeline.AnalyzeLoopRegionsOpened(ctx, o, mod, *line, opts, copts, tf.ScanWorkers)
				printRegions(regs, err)
				return err
			}
			region, err := pipeline.LoopRegionOpened(o, mod, *line, *instance)
			if err != nil {
				return err
			}
			if *jsonOut {
				return printRegionJSON(region, *instance)
			}
			g, err := ddg.BuildOpts(region, opts)
			if err != nil {
				return err
			}
			return printGraph(g)
		}

		var tr *trace.Trace
		if *traceFile != "" {
			// Whole-program analysis needs every event resident; only this
			// mode decodes the file into memory.
			f, o, err := openTrace()
			if err != nil {
				return err
			}
			events, err := trace.ReadAll(o.Source())
			f.Close()
			if err != nil {
				return err
			}
			tr = &trace.Trace{Module: mod, Events: events}
		} else {
			var err error
			_, tr, err = pipeline.TraceCtxOpts(ctx, mod, core.Budget{}, copts)
			if err != nil {
				return err
			}
		}
		if *line != 0 && *instance < 0 {
			// Analyze every dynamic execution of the loop, regions fanned
			// out across the worker pool.
			regs, err := pipeline.AnalyzeLoopRegionsCtx(ctx, tr, *line, opts, copts)
			printRegions(regs, err)
			return err
		}
		var g *ddg.Graph
		if *line == 0 {
			g, err = ddg.BuildOpts(tr, opts)
		} else {
			var region *trace.Trace
			region, err = pipeline.LoopRegion(tr, *line, *instance)
			if err != nil {
				return err
			}
			if *jsonOut {
				return printRegionJSON(region, *instance)
			}
			g, err = ddg.BuildOpts(region, opts)
		}
		if err != nil {
			return err
		}
		return printGraph(g)
	}()
	if serr := prof.Stop(); err == nil {
		err = serr
	}
	if off, ok := trace.CorruptOffset(err); ok {
		rec.SetCorruptByte(off)
	}
	config := map[string]any{
		"file": file, "line": *line, "instance": *instance,
		"workers": copts.WorkerCount(), "tile": *tile,
		"relax_reductions": *relax, "int_ops": *intOps,
		"dispatch": *dispatch, "shadow": *shadow,
	}
	if *traceFile != "" {
		config["trace"] = *traceFile
		config["trace_format"] = tf.Format
		config["scan_workers"] = tf.ScanWorkers
	}
	if serr := obsFlags.Stop(config); err == nil {
		err = serr
	}
	return err
}

// speedupCmd models the §4.4 before/after workflow: run the original and a
// transformed version, check they compute the same outputs, and report the
// modeled time and speedup on the three Table 4 machines.
func speedupCmd(origFile string, rest []string) error {
	if len(rest) < 1 {
		return fmt.Errorf("usage: vectrace speedup original.c transformed.c")
	}
	transFile := rest[0]

	type side struct {
		mod      *ir.Module
		res      *interp.Result
		verdicts map[int]staticvec.Verdict
	}
	load := func(file string) (*side, error) {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		mod, err := pipeline.Compile(file, string(src))
		if err != nil {
			return nil, err
		}
		res, err := pipeline.Run(mod, true)
		if err != nil {
			return nil, err
		}
		return &side{mod: mod, res: res, verdicts: staticvec.AnalyzeModule(mod)}, nil
	}
	orig, err := load(origFile)
	if err != nil {
		return err
	}
	trans, err := load(transFile)
	if err != nil {
		return err
	}

	// Equivalence check on printed outputs.
	if len(orig.res.Output) != len(trans.res.Output) {
		return fmt.Errorf("speedup: versions print %d vs %d values — not equivalent",
			len(orig.res.Output), len(trans.res.Output))
	}
	for i := range orig.res.Output {
		a, b := orig.res.Output[i], trans.res.Output[i]
		tol := 1e-9 * (1 + math.Abs(a))
		if math.Abs(a-b) > tol {
			return fmt.Errorf("speedup: output %d differs: %v vs %v — versions are not equivalent", i, a, b)
		}
	}
	fmt.Printf("outputs match (%d values)\n\n", len(orig.res.Output))

	fmt.Printf("%-22s %14s %14s %9s\n", "machine", "original", "transformed", "speedup")
	for _, m := range simd.Machines() {
		ot := simd.SimulateTime(orig.mod, orig.res, orig.verdicts, m)
		tt := simd.SimulateTime(trans.mod, trans.res, trans.verdicts, m)
		fmt.Printf("%-22s %14.0f %14.0f %8.2fx\n", m.Name, ot, tt, ot/tt)
	}
	return nil
}
