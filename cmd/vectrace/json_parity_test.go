package main

import (
	"context"
	"encoding/json"
	"testing"

	"github.com/example/vectrace/internal/core"
	"github.com/example/vectrace/internal/ddg"
	"github.com/example/vectrace/internal/pipeline"
	"github.com/example/vectrace/internal/report"
)

// TestAnalyzeJSONParity pins the byte-identity contract between the CLI
// and the service: `analyze -line N -json` must emit exactly the bytes
// the pipeline + canonical encoder produce — the same bytes vectraced
// serves from /v1/jobs/{id}/report — for both the all-instances and the
// single-instance paths.
func TestAnalyzeJSONParity(t *testing.T) {
	path := writeSample(t)

	for _, tc := range []struct {
		name     string
		instance int
		args     []string
	}{
		{"all instances", -1, nil},
		{"single instance", 0, []string{"-instance", "0"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			regs, err := pipeline.AnalyzeSourceCtx(context.Background(), path, sampleProgram,
				11, tc.instance, ddg.Options{}, core.Options{}, core.Budget{})
			if err != nil {
				t.Fatal(err)
			}
			want, err := report.RegionsJSON(regs)
			if err != nil {
				t.Fatal(err)
			}

			args := append([]string{"analyze", path, "-line", "11", "-json"}, tc.args...)
			got, err := capture(t, args...)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("-json output differs from pipeline ground truth:\n got: %s\nwant: %s", got, want)
			}
			// And it must actually be a well-formed regions document.
			var doc struct {
				Regions []json.RawMessage `json:"regions"`
			}
			if err := json.Unmarshal([]byte(got), &doc); err != nil {
				t.Fatalf("-json output is not valid JSON: %v", err)
			}
			if len(doc.Regions) == 0 {
				t.Fatal("-json output has no regions")
			}
		})
	}
}

// TestAnalyzeJSONFlagValidation pins the flag contract: -json needs a
// -line target and excludes the human-oriented -baselines table.
func TestAnalyzeJSONFlagValidation(t *testing.T) {
	path := writeSample(t)
	if _, err := capture(t, "analyze", path, "-json"); err == nil {
		t.Error("-json without -line was accepted")
	}
	if _, err := capture(t, "analyze", path, "-line", "11", "-json", "-baselines"); err == nil {
		t.Error("-json with -baselines was accepted")
	}
}
