package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/example/vectrace/internal/obs"
)

// captureBoth runs the CLI entry with stdout AND stderr redirected — the
// observability surface (progress, failure summaries) prints to stderr so
// report output on stdout stays byte-identical.
func captureBoth(t *testing.T, args ...string) (stdout, stderr string, runErr error) {
	t.Helper()
	oldOut, oldErr := os.Stdout, os.Stderr
	ro, wo, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	re, we, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout, os.Stderr = wo, we
	runErr = run(args)
	wo.Close()
	we.Close()
	os.Stdout, os.Stderr = oldOut, oldErr
	var bufOut, bufErr bytes.Buffer
	if _, err := bufOut.ReadFrom(ro); err != nil {
		t.Fatal(err)
	}
	if _, err := bufErr.ReadFrom(re); err != nil {
		t.Fatal(err)
	}
	return bufOut.String(), bufErr.String(), runErr
}

// TestAnalyzeStatsDocument runs a full observed analysis and validates the
// emitted RunStats document: schema, stage spans, counters, clean failures.
func TestAnalyzeStatsDocument(t *testing.T) {
	path := writeSample(t)
	statsPath := filepath.Join(t.TempDir(), "stats.json")
	out, err := capture(t, "analyze", path, "-line", "8", "-instance", "-1", "-stats", statsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "== region 1/1") {
		t.Fatalf("analysis output missing:\n%s", out)
	}
	data, err := os.ReadFile(statsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateRunStats(data); err != nil {
		t.Fatalf("stats document failed validation: %v\n%s", err, data)
	}
	var rs obs.RunStats
	if err := json.Unmarshal(data, &rs); err != nil {
		t.Fatal(err)
	}
	if rs.Tool != "vectrace analyze" {
		t.Errorf("tool = %q", rs.Tool)
	}
	for _, stage := range []string{"parse", "check", "lower", "interp", "region-analyze", "report"} {
		if _, ok := rs.SpanTotals[stage]; !ok {
			t.Errorf("stats missing stage span %q", stage)
		}
	}
	for name, min := range map[string]int64{
		"regions_started":     1,
		"regions_completed":   1,
		"candidates_analyzed": 1,
		"ddg_nodes":           1,
		"ddg_edges":           1,
		"tiles_dispatched":    1,
		"partitions_emitted":  1,
		"interp_steps":        1,
	} {
		if rs.Counters[name] < min {
			t.Errorf("counter %s = %d, want >= %d", name, rs.Counters[name], min)
		}
	}
	if rs.Failures.RegionsFailed != 0 || rs.Failures.CorruptAtByte != -1 {
		t.Errorf("clean run reported failures: %+v", rs.Failures)
	}
	if rs.Config["line"] != float64(8) {
		t.Errorf("config missing the analyzed line: %v", rs.Config)
	}
}

// TestAnalyzeObservedOutputIdentical: the same analysis with and without
// the observability flags prints byte-identical stdout.
func TestAnalyzeObservedOutputIdentical(t *testing.T) {
	path := writeSample(t)
	plain, err := capture(t, "analyze", path, "-line", "11", "-instance", "-1", "-workers", "4")
	if err != nil {
		t.Fatal(err)
	}
	statsPath := filepath.Join(t.TempDir(), "stats.json")
	observed, stderrOut, err := captureBoth(t, "analyze", path, "-line", "11", "-instance", "-1",
		"-workers", "4", "-stats", statsPath, "-progress")
	if err != nil {
		t.Fatal(err)
	}
	if plain != observed {
		t.Fatalf("stdout differs with observability on:\n--- plain ---\n%s--- observed ---\n%s", plain, observed)
	}
	if !strings.Contains(stderrOut, "progress:") || !strings.Contains(stderrOut, "done") {
		t.Errorf("-progress printed nothing to stderr:\n%s", stderrOut)
	}
}

// TestAnalyzeFailureSummaryLine: a truncated trace in streaming mode must
// end with the one-line stderr summary naming the failed-region count, the
// first error, and the corrupt byte offset — and the same offset must land
// in the stats document.
func TestAnalyzeFailureSummaryLine(t *testing.T) {
	path := writeSample(t)
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "s.vtr")
	if _, err := capture(t, "record", path, "-o", tracePath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tracePath, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	statsPath := filepath.Join(dir, "stats.json")
	_, stderrOut, err := captureBoth(t, "analyze", path, "-trace", tracePath,
		"-line", "8", "-instance", "-1", "-stats", statsPath)
	if err == nil {
		t.Fatal("truncated trace analyzed without error")
	}
	var summary string
	for _, line := range strings.Split(strings.TrimSpace(stderrOut), "\n") {
		if strings.Contains(line, "regions failed") {
			summary = line
		}
	}
	if summary == "" {
		t.Fatalf("no failure summary line on stderr:\n%s", stderrOut)
	}
	if !strings.Contains(summary, "trace corrupt at byte offset") {
		t.Errorf("summary does not name the corrupt byte offset: %q", summary)
	}
	sdata, err := os.ReadFile(statsPath)
	if err != nil {
		t.Fatal(err)
	}
	var rs obs.RunStats
	if err := json.Unmarshal(sdata, &rs); err != nil {
		t.Fatal(err)
	}
	if rs.Failures.CorruptAtByte < 0 {
		t.Errorf("stats corrupt_at_byte = %d, want the decoder offset", rs.Failures.CorruptAtByte)
	}
}

// TestAnalyzeDebugAddr smoke-tests that -debug-addr accepts an ephemeral
// port and the analysis completes with the listener wired (the endpoint
// content is covered by the obs and diag suites).
func TestAnalyzeDebugAddr(t *testing.T) {
	path := writeSample(t)
	out, err := capture(t, "analyze", path, "-line", "8", "-debug-addr", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "avg-concurrency") {
		t.Errorf("analysis output looks wrong:\n%s", out)
	}
}
