// Command vectraced serves the dynamic vectorization-potential analysis
// as a multi-tenant job API that degrades gracefully under overload.
//
// Usage:
//
//	vectraced [-addr localhost:8722] [-queue 64] [-job-workers 4] ...
//
// Clients POST a MiniC program (optionally with a recorded VTR1/VTR2
// trace) to /v1/jobs, poll or stream the job's progress, and fetch the
// analysis as the same canonical JSON `vectrace analyze -json` prints —
// byte for byte. GET /v1/tables/{1..3} regenerates the paper's tables.
//
// The robustness surface is the point of the daemon:
//
//   - A bounded admission queue sheds overload with 429 + Retry-After
//     instead of buffering unbounded work; memory stays bounded by
//     -queue × the per-job budget.
//   - Every job runs under its own budget and deadline (composed with the
//     -job-timeout server ceiling; shortest wins, the error names which
//     fired), and a panicking job surfaces a typed error in its own
//     result without taking the process down.
//   - Uploads are guarded: -max-upload size cap (413), -upload-timeout
//     slow-client read deadline (408), corrupt traces degrade per region.
//   - A content-addressed result cache (-cache-entries) with
//     single-flight dedup makes identical submissions ~free.
//   - SIGTERM/SIGINT drains gracefully: new submissions get 503, queued
//     and running jobs get -drain-timeout to finish before being
//     checkpoint-failed, and the -stats document flushes afterwards so
//     the final counters include every drained job.
//
// Observability mirrors the other commands: -stats writes a RunStats
// JSON document on exit, -progress prints live counters, -debug-addr
// serves /metrics and /debug/pprof.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/example/vectrace/internal/diag"
	"github.com/example/vectrace/internal/obs"
	"github.com/example/vectrace/internal/server"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vectraced:", err)
		os.Exit(1)
	}
}

func run(argv []string) error {
	fs := flag.NewFlagSet("vectraced", flag.ContinueOnError)
	var sf diag.Serve
	sf.Register(fs)
	var od diag.Obs
	od.Tool = "vectraced"
	od.Register(fs)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if err := sf.Validate(); err != nil {
		return err
	}
	// The flight ring exists before od.Start so the -debug-addr listener's
	// /debug/flight serves the same ring the API port does.
	flight := obs.NewFlightRecorder(sf.FlightEvents)
	od.Flight = flight
	if err := od.Start(); err != nil {
		return err
	}

	// The service counters always record, even without -stats: /statsz
	// serves them live. With -stats the same recorder feeds the exported
	// document, so the final dump includes every job the drain finished.
	rec := od.Recorder()
	if rec == nil {
		rec = obs.New()
	}
	srv := server.New(server.FromServeFlags(&sf, rec, od.Logger(), flight))

	ln, err := net.Listen("tcp", sf.Addr)
	if err != nil {
		od.Stop(nil) //nolint:errcheck
		return err
	}
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Fprintf(os.Stderr, "vectraced: listening on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	// SIGQUIT dumps the flight recorder to stderr and keeps serving — the
	// attach-free postmortem: recent lifecycle events on demand without
	// killing the process the way the runtime's default SIGQUIT would.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		for range quit {
			flight.WriteText(os.Stderr) //nolint:errcheck
		}
	}()
	defer signal.Stop(quit)

	var serveErr error
	drainClean := true
	select {
	case serveErr = <-errc:
	case got := <-sig:
		signal.Stop(sig)
		fmt.Fprintf(os.Stderr, "vectraced: %v: draining (budget %v)\n", got, sf.DrainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), sf.DrainTimeout)
		if derr := srv.Drain(ctx); derr != nil {
			drainClean = false
			fmt.Fprintf(os.Stderr, "vectraced: drain budget exceeded, in-flight jobs checkpoint-failed\n")
		}
		cancel()
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		hs.Shutdown(sctx) //nolint:errcheck
		scancel()
	}

	stopErr := od.Stop(map[string]any{
		"addr":        sf.Addr,
		"queue":       sf.Queue,
		"job_workers": sf.JobWorkers,
		"drain_clean": drainClean,
	})
	if serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	return stopErr
}
