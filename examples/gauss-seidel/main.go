// Case study (paper §4.4, Listing 5): the 2-D Gauss-Seidel stencil.
//
// The vendor-compiler stand-in refuses the original loop for its
// loop-carried dependence, yet the dynamic analysis finds that two of the
// eight additions are vectorizable at unit stride and the rest carry
// non-unit (wavefront) potential. After the paper's manual loop splitting,
// the temp[] loop vectorizes and the modeled machines show real speedups.
package main

import (
	"fmt"
	"log"

	"github.com/example/vectrace/internal/core"
	"github.com/example/vectrace/internal/ddg"
	"github.com/example/vectrace/internal/kernels"
	"github.com/example/vectrace/internal/pipeline"
	"github.com/example/vectrace/internal/simd"
	"github.com/example/vectrace/internal/staticvec"
)

func main() {
	orig := kernels.GaussSeidel(48, 4)
	trans := kernels.GaussSeidelTransformed(48, 4)

	// 1. What does the compiler do with the original?
	mod, err := pipeline.Compile(orig.Name+".c", orig.Source)
	if err != nil {
		log.Fatal(err)
	}
	verdicts := staticvec.AnalyzeModule(mod)
	lm := mod.LoopByLine(orig.LineOf("@j-loop"))
	fmt.Printf("original inner loop: vectorized=%v (%s)\n",
		verdicts[lm.ID].Vectorized, verdicts[lm.ID].Reason)

	// 2. What does the dynamic analysis say? Analyze one sweep of the
	// i-loop region.
	_, tr, err := pipeline.Trace(mod)
	if err != nil {
		log.Fatal(err)
	}
	region, err := pipeline.LoopRegion(tr, orig.LineOf("@time-loop"), 0)
	if err != nil {
		log.Fatal(err)
	}
	g, err := ddg.Build(region)
	if err != nil {
		log.Fatal(err)
	}
	rep := core.Analyze(g, core.Options{})
	fmt.Printf("dynamic analysis: %.1f%% unit-stride vec ops, %.1f%% non-unit (wavefront)\n",
		rep.UnitVecOpsPct, rep.NonUnitVecOpsPct)

	// 3. After the paper's transformation, the temp loop vectorizes.
	tmod, err := pipeline.Compile(trans.Name+".c", trans.Source)
	if err != nil {
		log.Fatal(err)
	}
	tverdicts := staticvec.AnalyzeModule(tmod)
	vec := tmod.LoopByLine(trans.LineOf("@vec-loop"))
	ser := tmod.LoopByLine(trans.LineOf("@serial-loop"))
	fmt.Printf("transformed temp loop:       vectorized=%v\n", tverdicts[vec.ID].Vectorized)
	fmt.Printf("transformed recurrence loop: vectorized=%v (%s)\n",
		tverdicts[ser.ID].Vectorized, tverdicts[ser.ID].Reason)

	// 4. Modeled speedups (Table 4 row).
	ores, err := pipeline.Run(mod, true)
	if err != nil {
		log.Fatal(err)
	}
	tres, err := pipeline.Run(tmod, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmodeled speedups (original / transformed):")
	ohot := mod.LoopByLine(orig.LineOf("@time-loop"))
	thot := tmod.LoopByLine(trans.LineOf("@time-loop"))
	for _, m := range simd.Machines() {
		ot := simd.LoopTime(mod, ores, verdicts, m, ohot.ID)
		tt := simd.LoopTime(tmod, tres, tverdicts, m, thot.ID)
		fmt.Printf("  %-22s %.2fx\n", m.Name, ot/tt)
	}
}
