// Case study (paper §4.4, Listing 8): data-layout transformation for milc.
//
// The original su3 matrix-vector product walks an array of structures:
// every site's complex components interleave, so independent operations sit
// at stride sizeof(su3_matrix) — the non-unit-stride analysis (§3.3) flags
// exactly this as a data-layout opportunity. Transforming the lattice to a
// structure of arrays exposes unit-stride site-major access that the static
// vectorizer accepts, and the modeled machines show the Table 4 speedup.
package main

import (
	"fmt"
	"log"

	"github.com/example/vectrace/internal/core"
	"github.com/example/vectrace/internal/ddg"
	"github.com/example/vectrace/internal/kernels"
	"github.com/example/vectrace/internal/pipeline"
	"github.com/example/vectrace/internal/simd"
	"github.com/example/vectrace/internal/staticvec"
)

func main() {
	cs := kernels.Milc(256)

	// Dynamic analysis of the original AoS loop: the §3.3 signal.
	mod, _, tr, err := pipeline.CompileAndTrace(cs.Original.Name+".c", cs.Original.Source)
	if err != nil {
		log.Fatal(err)
	}
	region, err := pipeline.LoopRegion(tr, cs.Original.LineOf("@hot"), 0)
	if err != nil {
		log.Fatal(err)
	}
	g, err := ddg.Build(region)
	if err != nil {
		log.Fatal(err)
	}
	rep := core.Analyze(g, core.Options{})
	fmt.Println("original (array-of-structures) lattice:")
	fmt.Printf("  unit-stride vec ops:     %.1f%%\n", rep.UnitVecOpsPct)
	fmt.Printf("  non-unit-stride vec ops: %.1f%% at avg size %.1f  <-- layout-transform signal\n",
		rep.NonUnitVecOpsPct, rep.NonUnitAvgVecSize)

	verdicts := staticvec.AnalyzeModule(mod)
	inner := mod.LoopByLine(cs.Original.LineOf("@inner"))
	fmt.Printf("  compiler verdict:        %s\n\n", verdicts[inner.ID].Reason)

	// The transformed SoA version vectorizes.
	tmod, err := pipeline.Compile(cs.Transformed.Name+".c", cs.Transformed.Source)
	if err != nil {
		log.Fatal(err)
	}
	tverdicts := staticvec.AnalyzeModule(tmod)
	vl := tmod.LoopByLine(cs.Transformed.LineOf("@vec-loop"))
	fmt.Printf("transformed (structure-of-arrays) lattice:\n")
	fmt.Printf("  compiler verdict:        vectorized=%v reduction=%v\n\n",
		tverdicts[vl.ID].Vectorized, tverdicts[vl.ID].Reduction)

	// Table 4 row: modeled speedups.
	ores, err := pipeline.Run(mod, true)
	if err != nil {
		log.Fatal(err)
	}
	tres, err := pipeline.Run(tmod, true)
	if err != nil {
		log.Fatal(err)
	}
	ohot := mod.LoopByLine(cs.Original.LineOf("@hot"))
	thot := tmod.LoopByLine(cs.Transformed.LineOf("@hot"))
	fmt.Println("modeled speedups (original / transformed):")
	for _, m := range simd.Machines() {
		ot := simd.LoopTime(mod, ores, verdicts, m, ohot.ID)
		tt := simd.LoopTime(tmod, tres, tverdicts, m, thot.ID)
		fmt.Printf("  %-22s %.2fx\n", m.Name, ot/tt)
	}
}
