// §4.3 demonstration: the dynamic analysis is invariant to code form.
//
// The UTDSP FIR filter is analyzed in its array-based and pointer-based
// versions. Both produce byte-identical outputs and identical dynamic
// vectorization metrics — the analysis sees IR-level operations and
// run-time addresses, not surface syntax. The static vectorizer (the
// compiler stand-in), by contrast, accepts the array form and rejects the
// pointer form for unprovable aliasing, reproducing the paper's Table 3
// asymmetry.
package main

import (
	"fmt"
	"log"

	"github.com/example/vectrace/internal/core"
	"github.com/example/vectrace/internal/ddg"
	"github.com/example/vectrace/internal/kernels"
	"github.com/example/vectrace/internal/pipeline"
	"github.com/example/vectrace/internal/staticvec"
)

func main() {
	pair := kernels.FIRPair(64, 16)
	for _, variant := range []struct {
		style  string
		kernel kernels.Kernel
	}{
		{"array-based", pair.Array},
		{"pointer-based", pair.Pointer},
	} {
		k := variant.kernel
		mod, res, tr, err := pipeline.CompileAndTrace(k.Name+".c", k.Source)
		if err != nil {
			log.Fatal(err)
		}
		region, err := pipeline.LoopRegion(tr, k.LineOf("@hot"), 0)
		if err != nil {
			log.Fatal(err)
		}
		g, err := ddg.Build(region)
		if err != nil {
			log.Fatal(err)
		}
		rep := core.Analyze(g, core.Options{})

		verdicts := staticvec.AnalyzeModule(mod)
		inner := mod.LoopByLine(k.LineOf("@inner"))
		v := verdicts[inner.ID]
		status := "vectorized"
		if !v.Vectorized {
			status = "NOT vectorized: " + v.Reason
		}

		fmt.Printf("%s FIR:\n", variant.style)
		fmt.Printf("  output checksum:        %.9f\n", res.Checksum())
		fmt.Printf("  avg concurrency:        %.1f\n", rep.AvgConcurrency)
		fmt.Printf("  unit-stride vec ops:    %.1f%% (avg vector size %.1f)\n",
			rep.UnitVecOpsPct, rep.UnitAvgVecSize)
		fmt.Printf("  compiler verdict:       %s\n\n", status)
	}
	fmt.Println("identical dynamic metrics, asymmetric compiler results — Table 3 in miniature")
}
