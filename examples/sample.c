double a[64];
double b[64];
double s;

void main() {
  int i;
  for (i = 0; i < 64; i++) {
    a[i] = 0.5 * i;
  }
  for (i = 0; i < 64; i++) {
    b[i] = 2.0 * a[i] + 1.0;
  }
  for (i = 0; i < 64; i++) {
    s = s + b[i];
  }
  print(s);
}
