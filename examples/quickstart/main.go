// Quickstart: run the paper's full pipeline on its own running example
// (Listing 1) — compile a MiniC program, execute it under instrumentation,
// build the dynamic data-dependence graph, and characterize each
// floating-point instruction's SIMD potential.
//
// The program prints the Figure 1 story: statement S1 (a recurrence) is
// serial, while statement S2 — which a critical-path analysis would fragment
// — decomposes into N-1 fully vectorizable partitions of size N.
package main

import (
	"fmt"
	"log"

	"github.com/example/vectrace/internal/baseline"
	"github.com/example/vectrace/internal/core"
	"github.com/example/vectrace/internal/ddg"
	"github.com/example/vectrace/internal/kernels"
	"github.com/example/vectrace/internal/pipeline"
)

func main() {
	const n = 16
	k := kernels.Listing1(n)
	fmt.Println("Analyzing the paper's Listing 1:")
	fmt.Println(k.Source)

	// Compile → execute under instrumentation → capture the trace.
	mod, res, tr, err := pipeline.CompileAndTrace(k.Name+".c", k.Source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed %d dynamic instructions (%d floating-point candidates)\n\n",
		res.Steps, res.FPOps)

	// Build the dynamic data-dependence graph (flow dependences only).
	g, err := ddg.Build(tr)
	if err != nil {
		log.Fatal(err)
	}

	// Characterize each candidate instruction with Algorithm 1 + the
	// stride analyses.
	rep := core.Analyze(g, core.Options{})
	fmt.Println("per-instruction vectorization potential:")
	fmt.Print(rep.String())

	// Zoom in on S2 and contrast with the Kumar-style baseline (Figure 1).
	line := k.LineOf("@S2")
	for _, id := range mod.CandidateIDs(-1) {
		if mod.InstrAt(id).Pos.Line != line {
			continue
		}
		parts := core.Partitions(g, id, core.Options{})
		kumar := baseline.PartitionsByTimestamp(g, id, baseline.KumarTimestamps(g))
		fmt.Printf("\nS2 (line %d):\n", line)
		fmt.Printf("  Algorithm 1:   %3d partitions (max size %d) — vector-sized groups\n",
			len(parts), maxPart(parts))
		fmt.Printf("  critical path: %3d partitions — the fragmentation Figure 1(a) shows\n",
			len(kumar))
	}
}

func maxPart(parts []core.Partition) int {
	m := 0
	for _, p := range parts {
		if len(p.Nodes) > m {
			m = len(p.Nodes)
		}
	}
	return m
}
