// Expert workflow (paper §4.2): triage a program the way a vectorization
// expert would with the tool's help.
//
//  1. Profile and rank the hot loops by unexploited, cycle-weighted
//     potential, with each compiler rejection classified as statically
//     fixable (loop or layout transformation, better analysis) or
//     input-dependent.
//  2. Print the annotated source so the expert sees, line by line, where
//     the concurrency and the stride problems live.
//
// The sample program deliberately mixes the paper's archetypes: an
// already-vectorized stream, a column-major walk (layout problem), an
// indirection loop (input-dependent), and a reduction.
package main

import (
	"fmt"
	"log"

	"github.com/example/vectrace/internal/core"
	"github.com/example/vectrace/internal/pipeline"
	"github.com/example/vectrace/internal/report"
)

const program = `
double grid[64][64];
double col[64];
double vals[256];
int idx[256];
double total;

void main() {
  int i;
  int j;
  double s;
  for (i = 0; i < 64; i++) {           /* stream: vectorized */
    for (j = 0; j < 64; j++) {
      grid[i][j] = 0.01 * i + 0.002 * j;
    }
  }
  for (i = 0; i < 256; i++) {
    idx[i] = (i * 37) % 256;
    vals[i] = 0.5 * i;
  }
  for (j = 0; j < 64; j++) {           /* column walk: layout problem */
    for (i = 0; i < 64; i++) {
      col[j] = col[j] + grid[i][j] * 0.5;
    }
  }
  s = 0.0;
  for (i = 0; i < 256; i++) {          /* indirection: input-dependent */
    s = s + vals[idx[i]] * vals[idx[i]];
  }
  total = s;
  print(col[63]);
  print(s);
}
`

func main() {
	mod, err := pipeline.Compile("triage.c", program)
	if err != nil {
		log.Fatal(err)
	}
	res, tr, err := pipeline.Trace(mod)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== step 1: ranked opportunities ==")
	rows, err := report.RankOpportunities(mod, res, tr, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.RenderOpportunities(rows))

	fmt.Println("\n== step 2: annotated source ==")
	anns, err := report.AnnotateSource(tr, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.RenderAnnotatedSource(program, anns))
}
